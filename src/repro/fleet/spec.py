"""Job descriptions and placement: who runs where on the shared fabric.

A :class:`JobSpec` names one tenant — an MPI job (point-to-point pair,
ring halo, fan-in reduce tree) or a background-traffic generator — in
JSON-safe terms so fleet scenarios survive the ``exp`` process pool.
:func:`place_jobs` maps every job onto a *disjoint* node set (one rank
per node; tenants never share a NIC, which is what makes the per-tenant
counter views in :mod:`repro.fleet.profile` exact rather than
attributed).  Three placement policies:

* ``packed`` — consecutive nodes, first fit: tenants mostly stay inside
  a leaf/group, minimizing shared links;
* ``spread`` — round-robin across Dragonfly groups: every tenant
  straddles the global links, maximizing contention;
* ``random`` — a seeded permutation of the node list, then first fit —
  the scheduler-roulette case between the two extremes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.fleet.traffic import TrafficSpec
from repro.units import KiB

JOB_KINDS = ("pair", "halo", "tree", "traffic")
PLACEMENTS = ("packed", "spread", "random")


@dataclass(frozen=True)
class JobSpec:
    """One tenant of the shared fabric (JSON-safe)."""

    name: str
    #: ``pair`` / ``halo`` / ``tree`` MPI jobs, or ``traffic``.
    kind: str = "pair"
    #: Ranks for MPI jobs; traffic generators use the same field for
    #: the node count they spray across.
    n_ranks: int = 2
    n_partitions: int = 8
    partition_size: int = 64 * KiB
    iterations: int = 4
    warmup: int = 1
    compute: float = 0.0
    #: Transport-module descriptor (see :mod:`repro.exp.modules`);
    #: tuple-of-tuples so the spec stays hashable.
    module: tuple = ("persist",)
    #: Offered-load pattern; required for (and only for) ``traffic``.
    traffic: Optional[TrafficSpec] = None

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise ConfigError(f"unknown job kind {self.kind!r} "
                              f"(have: {', '.join(JOB_KINDS)})")
        if self.n_ranks < 2:
            raise ConfigError("a job needs at least two ranks")
        if self.kind == "traffic" and self.traffic is None:
            raise ConfigError("traffic jobs need a TrafficSpec")
        if self.kind != "traffic" and self.traffic is not None:
            raise ConfigError(f"{self.kind} jobs take no TrafficSpec")
        if self.n_partitions < 1 or self.partition_size < 1:
            raise ConfigError("jobs need positive partition geometry")

    def as_dict(self) -> dict:
        out = {
            "name": self.name, "kind": self.kind, "n_ranks": self.n_ranks,
            "n_partitions": self.n_partitions,
            "partition_size": self.partition_size,
            "iterations": self.iterations, "warmup": self.warmup,
            "compute": self.compute, "module": list(self.module),
        }
        if self.traffic is not None:
            out["traffic"] = self.traffic.as_dict()
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        d = dict(d)
        if d.get("traffic") is not None:
            d["traffic"] = TrafficSpec(**d["traffic"])
        if "module" in d:
            d["module"] = _hashable(d["module"])
        return cls(**d)


def _hashable(desc) -> tuple:
    """A module descriptor as nested tuples (frozen-dataclass friendly)."""
    if isinstance(desc, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in desc.items()))
    if isinstance(desc, (list, tuple)):
        return tuple(_hashable(x) for x in desc)
    return desc


def module_descriptor(spec_module: tuple):
    """The ``build_module``-ready ``[name, params]`` list for a spec."""
    desc = list(spec_module)
    if len(desc) > 1 and isinstance(desc[1], tuple):
        desc[1] = {k: (list(v) if isinstance(v, tuple) else v)
                   for k, v in desc[1]}
    return desc


def place_jobs(jobs: list[JobSpec], topology, policy: str = "packed",
               seed: int = 0) -> dict[str, list[int]]:
    """Assign every job a disjoint node set on the routed topology.

    Returns ``{job.name: [node_id, ...]}`` with one node per rank.
    Raises :class:`~repro.errors.ConfigError` when the jobs need more
    nodes than the fabric has, on duplicate job names, or on an unknown
    policy.
    """
    if policy not in PLACEMENTS:
        raise ConfigError(f"unknown placement {policy!r} "
                          f"(have: {', '.join(PLACEMENTS)})")
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate job names in {names}")
    n_nodes = topology.n_nodes
    need = sum(job.n_ranks for job in jobs)
    if need > n_nodes:
        raise ConfigError(
            f"jobs need {need} nodes, fabric has {n_nodes}")
    if policy == "packed":
        order = list(range(n_nodes))
    elif policy == "spread":
        # Interleave groups: node 0 of group 0, node 0 of group 1, ...
        per_group = topology.nodes_per_group
        order = [g * per_group + i
                 for i in range(per_group)
                 for g in range(topology.groups)]
    else:  # random
        rng = np.random.Generator(np.random.PCG64(seed))
        order = [int(n) for n in rng.permutation(n_nodes)]
    placement: dict[str, list[int]] = {}
    cursor = 0
    for job in jobs:
        placement[job.name] = order[cursor:cursor + job.n_ranks]
        cursor += job.n_ranks
    return placement
