"""The fleet chaos workload: a spine-link flap during multi-job tenancy.

Two pair tenants share the routed test fabric, both crossing the same
global (spine) link from different leaves.  On top of whatever fault
schedule the campaign generated, the workload injects a deterministic
flap of that shared spine link — expressed as simultaneous flaps of
both tenants' node pairs, since fault injection keys on endpoints —
so every campaign run exercises correlated cross-tenant recovery.

Invariants beyond the standard chaos set:

* **exactly-once per tenant** — both tenants run *backed* buffers and
  verify the receiver's bytes against the sender's seeded fill pattern
  every iteration (replays and rescues must never duplicate or corrupt
  a partition), on top of the campaign's global duplicate accounting;
* **no cross-tenant leakage** — tenants own disjoint node sets, so any
  NIC outside a tenant's set that carried traffic is a leak; reported
  through ``RunReport.leaks``.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.invariants import RunReport
from repro.mem.buffer import PartitionedBuffer
from repro.mpi.cluster import Cluster
from repro.runtime import ComputePhase, SingleThreadDelay, WorkerTeam
from repro.sim.sync import SimBarrier
from repro.units import KiB, us

#: Tenant name -> (sender node, receiver node).  Both pairs cross the
#: global 0->1 spine link of the 8-node routed test fabric, from
#: different leaves (see RoutedDragonflyPlus(2, 2, groups=2)).
TENANT_NODES = {"tenantA": (0, 4), "tenantB": (2, 6)}

#: Deterministic shared-spine flap window (virtual seconds): inside the
#: default 2.5 ms campaign horizon, long enough to exhaust the chaos
#: config's short retry budget.
SPINE_FLAP_START = 0.6e-3
SPINE_FLAP_DURATION = 0.3e-3


def _fill_seed(it: int, tenant_index: int) -> int:
    return ((it * 7 + tenant_index) * 2654435761) % (1 << 31)


def run_fleet_workload(schedule, seed, module="native", ladder=False,
                       config=None, iterations=4, warmup=1) -> RunReport:
    """Run the two-tenant fleet under faults; see the module docstring."""
    from repro.chaos.workloads import chaos_config, resolve_module
    from repro.coll.plans import edge_modules
    from repro.fleet.run import default_topology

    if schedule is not None:
        for a, b in TENANT_NODES.values():
            schedule.link_flap(a, b, start=SPINE_FLAP_START,
                               duration=SPINE_FLAP_DURATION)
    cfg = chaos_config(seed, config)
    topology = default_topology()
    cluster = Cluster(n_nodes=topology.n_nodes, config=cfg,
                      topology=topology)
    if schedule is not None:
        cluster.fabric.install_faults(schedule)
    resolver = edge_modules(resolve_module(module, ladder))

    n_partitions, partition_size = 4, 4 * KiB
    total = warmup + iterations
    phase = ComputePhase(compute=us(150), noise=SingleThreadDelay(0.01))
    state = {"done": 0, "integrity": 0}
    tenants = list(TENANT_NODES)
    procs = {}
    for name in tenants:
        src_node, dst_node = TENANT_NODES[name]
        procs[name] = (cluster.add_process(node_id=src_node),
                       cluster.add_process(node_id=dst_node))

    def tenant_program(name, index, tag):
        src, dst = procs[name]
        barrier = SimBarrier(cluster.env, parties=2)
        sbuf = PartitionedBuffer(n_partitions, partition_size, backed=True)
        rbuf = PartitionedBuffer(n_partitions, partition_size, backed=True)

        def sender(proc):
            req = proc.psend_init(sbuf, dest=dst.rank, tag=tag,
                                  module=resolver(dst.rank))
            team = WorkerTeam(proc.env, n_partitions,
                              cluster.rngs.stream(f"noise.{name}"),
                              cores=cfg.host.cores_per_node)
            for it in range(total):
                yield barrier.wait()
                sbuf.fill_pattern(_fill_seed(it, index))
                yield from proc.start(req)
                yield team.run_round(
                    phase, lambda tid: proc.pready(req, tid))
                yield from proc.wait_partitioned(req)
            state["done"] += 1

        def receiver(proc):
            req = proc.precv_init(rbuf, source=src.rank, tag=tag,
                                  module=resolver(src.rank))
            for it in range(total):
                yield barrier.wait()
                yield from proc.start(req)
                yield from proc.wait_partitioned(req)
                expected = rbuf.expected_pattern(
                    0, rbuf.nbytes, _fill_seed(it, index))
                if not np.array_equal(rbuf.data, expected):
                    state["integrity"] += 1
            state["done"] += 1

        cluster.spawn(sender(src))
        cluster.spawn(receiver(dst))

    for index, name in enumerate(tenants):
        tenant_program(name, index, tag=index * 1000)
    cluster.run()

    completed = state["done"] == 2 * len(tenants)
    tenant_nodes = {n for pair in TENANT_NODES.values() for n in pair}
    leaks = []
    tenant_bytes = {}
    for name in tenants:
        tenant_bytes[name] = sum(
            cluster.fabric.nic_at(n).bytes_transmitted
            for n in TENANT_NODES[name])
    for node in range(topology.n_nodes):
        if node in tenant_nodes:
            continue
        nic = cluster.fabric.nic_at(node)
        if nic.bytes_transmitted or nic.messages_delivered:
            leaks.append(
                f"cross-tenant leakage: idle node {node} carried "
                f"{nic.bytes_transmitted}B / "
                f"{nic.messages_delivered} messages")
    return RunReport(
        workload="fleet", completed=completed,
        duration=float(cluster.env.now) if completed else 0.0,
        integrity_failures=state["integrity"],
        counters=cluster.fabric.counters.as_dict(),
        leaks=leaks,
        meta={"tenants": {name: list(TENANT_NODES[name])
                          for name in tenants},
              "tenant_bytes": tenant_bytes,
              "spine_flap": [SPINE_FLAP_START, SPINE_FLAP_DURATION],
              "iterations": iterations})
