"""Fleet observability: per-tenant counter views and the profile rollup.

Tenants never share a node (see :func:`repro.fleet.spec.place_jobs`),
so a tenant's traffic is exactly the traffic of its NICs — the
:class:`TenantView` sums NIC statistics over the job's node set, with
no attribution heuristics and no possibility of cross-tenant leakage
(the disjointness is what the fleet chaos invariants verify).  The
:class:`FleetProfile` rolls the views up with the routed fabric's
per-link occupancy stats into one JSON-safe report: link utilization
histogram, per-job iteration times, and (when isolated baselines are
supplied) per-job slowdown factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class TenantView:
    """One tenant's share of the fabric, summed over its own NICs."""

    name: str
    kind: str
    nodes: list[int]
    bytes_transmitted: int = 0
    messages_delivered: int = 0
    wqes_processed: int = 0
    #: Measured per-iteration wall times (MPI jobs; empty for traffic).
    iteration_times: list[float] = field(default_factory=list)
    #: Virtual time from first barrier release to last rank done.
    total_time: float = 0.0

    @property
    def mean_iteration(self) -> Optional[float]:
        if not self.iteration_times:
            return None
        return float(np.mean(self.iteration_times))

    def as_dict(self) -> dict:
        return {
            "name": self.name, "kind": self.kind, "nodes": list(self.nodes),
            "bytes_transmitted": self.bytes_transmitted,
            "messages_delivered": self.messages_delivered,
            "wqes_processed": self.wqes_processed,
            "iteration_times": list(self.iteration_times),
            "mean_iteration": self.mean_iteration,
            "total_time": self.total_time,
        }


def collect_tenant_views(cluster, jobs, placement,
                         records: dict) -> dict[str, TenantView]:
    """Build the per-tenant views from a finished fleet cluster."""
    views: dict[str, TenantView] = {}
    for job in jobs:
        nodes = placement[job.name]
        view = TenantView(name=job.name, kind=job.kind, nodes=list(nodes))
        for node in nodes:
            nic = cluster.fabric.nic_at(node)
            view.bytes_transmitted += nic.bytes_transmitted
            view.messages_delivered += nic.messages_delivered
            view.wqes_processed += nic.wqes_processed
        rec = records.get(job.name)
        if rec is not None:
            view.iteration_times = list(rec.get("iterations", []))
            view.total_time = float(rec.get("total_time", 0.0))
        views[job.name] = view
    return views


@dataclass
class FleetProfile:
    """The rollup of one multi-tenant run (JSON-safe via as_dict)."""

    makespan: float
    #: Per-link occupancy stats from :meth:`Fabric.link_stats`.
    links: dict = field(default_factory=dict)
    tenants: dict[str, TenantView] = field(default_factory=dict)
    #: ``{job_name: slowdown}`` vs the isolated baseline, when known.
    slowdowns: dict[str, float] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def link_histogram(self, buckets: int = 10) -> list[int]:
        """Link count per utilization decile (saturation at a glance)."""
        counts = [0] * buckets
        for stats in self.links.values():
            u = min(stats["utilization"], 1.0 - 1e-12)
            counts[int(u * buckets)] += 1
        return counts

    def busiest_links(self, n: int = 3) -> list[tuple[str, float]]:
        ranked = sorted(self.links.items(),
                        key=lambda kv: kv[1]["utilization"], reverse=True)
        return [(name, stats["utilization"]) for name, stats in ranked[:n]]

    def as_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "links": self.links,
            "link_histogram": self.link_histogram(),
            "busiest_links": [list(pair) for pair in self.busiest_links()],
            "tenants": {name: view.as_dict()
                        for name, view in self.tenants.items()},
            "slowdowns": dict(self.slowdowns),
            "meta": dict(self.meta),
        }


def attach_slowdowns(profile: FleetProfile,
                     baselines: dict[str, float]) -> None:
    """Fill ``profile.slowdowns`` from isolated mean-iteration baselines."""
    for name, view in profile.tenants.items():
        base = baselines.get(name)
        mean = view.mean_iteration
        if base and mean is not None and base > 0:
            profile.slowdowns[name] = mean / base
