"""The tenant scheduler: many jobs, one routed fabric, one clock.

:class:`TenantScheduler` builds a single :class:`~repro.mpi.Cluster`
over a routed topology, places every :class:`~repro.fleet.spec.JobSpec`
on a disjoint node set, and drives all tenants concurrently — MPI jobs
through the real partitioned stack (psend/precv channels, worker teams,
per-job barriers) and traffic tenants by replaying their seeded offered
load through real sends.  Everything shares the link graph, so tenants
contend exactly where their routes overlap.

Job drivers are *job-relative*: ranks inside a driver are indices into
the job's own process list, mapped to global cluster ranks only at the
psend/precv boundary.  Tags are partitioned per job
(``job_index * TAG_STRIDE``) so tenant channels can never match across
jobs even if node pairs collide.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import ClusterConfig, NIAGARA
from repro.errors import ConfigError
from repro.fleet.profile import FleetProfile, collect_tenant_views
from repro.fleet.spec import JobSpec, module_descriptor, place_jobs
from repro.fleet.traffic import offered_load
from repro.mem.buffer import Buffer, PartitionedBuffer
from repro.mpi.cluster import Cluster
from repro.runtime import ComputePhase, NoNoise, WorkerTeam
from repro.sim.sync import SimBarrier

#: Tag space reserved per job (channels + one tag per traffic event).
TAG_STRIDE = 100_000


def _spec_factory(module):
    """Module instance -> per-request ModuleSpec factory (None = persist)."""
    from repro.core.aggregators import Aggregator
    from repro.core.module import NativeSpec
    from repro.mpi.modules import ModuleSpec
    from repro.mpi.persist_module import PersistSpec

    if module is None:
        return PersistSpec
    if isinstance(module, Aggregator):
        return lambda: NativeSpec(module)
    if isinstance(module, ModuleSpec):
        return lambda: module
    return module


def _binomial_children(rank: int, world: int) -> list[int]:
    """Children of ``rank`` in the binomial fan-in tree rooted at 0."""
    children = []
    k = 0
    while rank % (1 << (k + 1)) == 0:
        child = rank + (1 << k)
        if child >= world:
            break
        children.append(child)
        k += 1
    return children


def _binomial_parent(rank: int) -> int:
    """Parent of ``rank`` (> 0): clear the lowest set bit."""
    return rank & (rank - 1)


class TenantScheduler:
    """Places and runs a set of jobs on one shared routed fabric."""

    def __init__(self, jobs: list[JobSpec], topology,
                 config: Optional[ClusterConfig] = None,
                 placement: str = "packed", seed: int = 0,
                 module_overrides: Optional[dict] = None,
                 placement_map: Optional[dict] = None):
        if not getattr(topology, "routed", False):
            raise ConfigError(
                "the fleet needs a routed topology (links to contend on)")
        self.jobs = list(jobs)
        self.topology = topology
        self.config = (config if config is not None
                       else NIAGARA).with_changes(seed=int(seed))
        self.placement_policy = placement
        self.seed = int(seed)
        #: Explicit ``{name: [node, ...]}`` beats the policy (used to
        #: pin isolated-baseline runs to their combined-run nodes).
        self.placement = (dict(placement_map) if placement_map is not None
                          else place_jobs(self.jobs, topology, placement,
                                          seed))
        self.cluster = Cluster(n_nodes=topology.n_nodes, config=self.config,
                               topology=topology)
        #: ``{job.name: [MPIProcess, ...]}`` in job-relative rank order.
        self.procs: dict[str, list] = {}
        for job in self.jobs:
            self.procs[job.name] = [
                self.cluster.add_process(node_id=node)
                for node in self.placement[job.name]]
        #: Live module/aggregator per job (overrides beat descriptors —
        #: used by the re-convergence driver to inject an autotuner).
        self._modules = {}
        overrides = module_overrides or {}
        for job in self.jobs:
            if job.kind == "traffic":
                continue
            if job.name in overrides:
                self._modules[job.name] = overrides[job.name]
            else:
                from repro.exp.modules import build_module

                self._modules[job.name] = build_module(
                    module_descriptor(job.module))
        self._records: dict[str, dict] = {}
        #: Per-round hooks ``fn(job_name, round_no)`` fired at each
        #: job barrier release (drives neighbor arrival/departure).
        self.round_hooks: list = []

    # -- drivers ----------------------------------------------------------

    def _team_for(self, job: JobSpec, rank: int) -> WorkerTeam:
        return WorkerTeam(
            self.cluster.env, job.n_partitions,
            self.cluster.rngs.stream(f"noise.{job.name}.rank{rank}"),
            cores=self.config.host.cores_per_node)

    def _fire_hooks(self, job_name: str, round_no: int) -> None:
        for hook in self.round_hooks:
            hook(job_name, round_no)

    def _drive_pair(self, job: JobSpec, tag_base: int) -> None:
        procs = self.procs[job.name]
        if len(procs) != 2:
            raise ConfigError(f"pair job {job.name} needs exactly 2 ranks")
        env = self.cluster.env
        factory = _spec_factory(self._modules[job.name])
        barrier = SimBarrier(env, parties=2)
        total = job.warmup + job.iterations
        start = np.zeros(total)
        finish = np.zeros((total, 2))
        rec = self._records[job.name] = {
            "start": start, "finish": finish, "done": 0}
        sbuf = PartitionedBuffer(job.n_partitions, job.partition_size,
                                 backed=False)
        rbuf = PartitionedBuffer(job.n_partitions, job.partition_size,
                                 backed=False)
        phase = ComputePhase(compute=job.compute, noise=NoNoise())

        def sender(proc, peer_rank):
            req = proc.psend_init(sbuf, dest=peer_rank, tag=tag_base,
                                  module=factory())
            team = self._team_for(job, 0)
            for it in range(total):
                yield barrier.wait()
                start[it] = env.now
                self._fire_hooks(job.name, it)
                yield from proc.start(req)
                yield team.run_round(phase, lambda tid: proc.pready(req, tid))
                yield from proc.wait_partitioned(req)
                finish[it, 0] = env.now
            rec["done"] += 1

        def receiver(proc, peer_rank):
            req = proc.precv_init(rbuf, source=peer_rank, tag=tag_base,
                                  module=factory())
            for it in range(total):
                yield barrier.wait()
                yield from proc.start(req)
                yield from proc.wait_partitioned(req)
                finish[it, 1] = env.now
            rec["done"] += 1

        self.cluster.spawn(sender(procs[0], procs[1].rank))
        self.cluster.spawn(receiver(procs[1], procs[0].rank))

    def _drive_halo(self, job: JobSpec, tag_base: int) -> None:
        """Bidirectional ring halo: every rank exchanges with both
        neighbors every iteration (the 1-D stencil pattern)."""
        procs = self.procs[job.name]
        world = len(procs)
        env = self.cluster.env
        factory = _spec_factory(self._modules[job.name])
        barrier = SimBarrier(env, parties=world)
        total = job.warmup + job.iterations
        start = np.zeros(total)
        finish = np.zeros((total, world))
        rec = self._records[job.name] = {
            "start": start, "finish": finish, "done": 0}
        phase = ComputePhase(compute=job.compute, noise=NoNoise())

        def rank_program(r):
            proc = procs[r]
            right, left = (r + 1) % world, (r - 1) % world
            mk = lambda: PartitionedBuffer(  # noqa: E731
                job.n_partitions, job.partition_size, backed=False)
            # Tags: +0 clockwise (to right), +1 counter-clockwise.
            send_r = proc.psend_init(mk(), dest=procs[right].rank,
                                     tag=tag_base, module=factory())
            send_l = proc.psend_init(mk(), dest=procs[left].rank,
                                     tag=tag_base + 1, module=factory())
            recv_l = proc.precv_init(mk(), source=procs[left].rank,
                                     tag=tag_base, module=factory())
            recv_r = proc.precv_init(mk(), source=procs[right].rank,
                                     tag=tag_base + 1, module=factory())
            team = self._team_for(job, r)

            def body(tid):
                yield from proc.pready(send_r, tid)
                yield from proc.pready(send_l, tid)

            for it in range(total):
                yield barrier.wait()
                if r == 0:
                    start[it] = env.now
                    self._fire_hooks(job.name, it)
                for req in (recv_l, recv_r, send_r, send_l):
                    yield from proc.start(req)
                yield team.run_round(phase, body)
                for req in (send_r, send_l, recv_l, recv_r):
                    yield from proc.wait_partitioned(req)
                finish[it, r] = env.now
            rec["done"] += 1

        for r in range(world):
            self.cluster.spawn(rank_program(r))

    def _drive_tree(self, job: JobSpec, tag_base: int) -> None:
        """Binomial fan-in reduce: leaves push up, parents forward after
        every child arrives (the pallreduce up-sweep)."""
        procs = self.procs[job.name]
        world = len(procs)
        env = self.cluster.env
        factory = _spec_factory(self._modules[job.name])
        barrier = SimBarrier(env, parties=world)
        total = job.warmup + job.iterations
        start = np.zeros(total)
        finish = np.zeros((total, world))
        rec = self._records[job.name] = {
            "start": start, "finish": finish, "done": 0}
        phase = ComputePhase(compute=job.compute, noise=NoNoise())
        mk = lambda: PartitionedBuffer(  # noqa: E731
            job.n_partitions, job.partition_size, backed=False)

        def rank_program(r):
            proc = procs[r]
            up = None
            if r > 0:
                up = proc.psend_init(mk(), dest=procs[_binomial_parent(r)].rank,
                                     tag=tag_base + r, module=factory())
            down = [proc.precv_init(mk(), source=procs[c].rank,
                                    tag=tag_base + c, module=factory())
                    for c in _binomial_children(r, world)]
            team = self._team_for(job, r)
            for it in range(total):
                yield barrier.wait()
                if r == 0:
                    start[it] = env.now
                    self._fire_hooks(job.name, it)
                for req in down:
                    yield from proc.start(req)
                if up is not None:
                    yield from proc.start(up)
                for req in down:
                    yield from proc.wait_partitioned(req)
                if up is not None:
                    yield team.run_round(
                        phase, lambda tid: proc.pready(up, tid))
                    yield from proc.wait_partitioned(up)
                finish[it, r] = env.now
            rec["done"] += 1

        for r in range(world):
            self.cluster.spawn(rank_program(r))

    def _drive_traffic(self, job: JobSpec, tag_base: int) -> None:
        """Replay the seeded offered load through real sends."""
        procs = self.procs[job.name]
        nodes = self.placement[job.name]
        rank_of = {node: proc.rank for node, proc in zip(nodes, procs)}
        proc_of = {node: proc for node, proc in zip(nodes, procs)}
        events = offered_load(job.traffic, nodes)
        env = self.cluster.env
        rec = self._records[job.name] = {
            "events": len(events), "delivered": 0, "done": 0}

        def one_flow(src, dst, nbytes, tag):
            sbuf = Buffer(nbytes, backed=False)
            rbuf = Buffer(nbytes, backed=False)

            def tx(proc=proc_of[src]):
                yield from proc.send(sbuf, dest=rank_of[dst], tag=tag)

            def rx(proc=proc_of[dst]):
                yield from proc.recv(rbuf, source=rank_of[src], tag=tag)
                rec["delivered"] += 1

            self.cluster.spawn(tx())
            self.cluster.spawn(rx())

        def driver():
            for i, (t, src, dst, nbytes) in enumerate(events):
                if t > env.now:
                    yield t - env.now
                one_flow(src, dst, nbytes, tag_base + i)
            rec["done"] = 1

        self.cluster.spawn(driver())

    # -- execution --------------------------------------------------------

    def launch(self) -> None:
        """Spawn every tenant's driver (does not advance the clock)."""
        drivers = {"pair": self._drive_pair, "halo": self._drive_halo,
                   "tree": self._drive_tree, "traffic": self._drive_traffic}
        for i, job in enumerate(self.jobs):
            drivers[job.kind](job, i * TAG_STRIDE)

    def run(self) -> FleetProfile:
        """Launch all tenants, run to completion, roll up the profile."""
        self.launch()
        self.cluster.run()
        makespan = self.cluster.env.now
        records = {}
        for job in self.jobs:
            rec = self._records[job.name]
            if job.kind == "traffic":
                if rec["delivered"] != rec["events"]:
                    raise AssertionError(
                        f"traffic job {job.name}: {rec['delivered']}/"
                        f"{rec['events']} flows delivered")
                records[job.name] = {"iterations": [],
                                     "total_time": makespan}
                continue
            world = len(self.procs[job.name])
            if rec["done"] != (2 if job.kind == "pair" else world):
                raise AssertionError(f"job {job.name} did not complete")
            start, finish = rec["start"], rec["finish"]
            elapsed = [float(finish[it].max() - start[it])
                       for it in range(job.warmup,
                                       job.warmup + job.iterations)]
            records[job.name] = {
                "iterations": elapsed,
                "total_time": float(finish.max() - start[0]),
            }
        profile = FleetProfile(
            makespan=makespan,
            links=self.cluster.fabric.link_stats(makespan),
            tenants=collect_tenant_views(
                self.cluster, self.jobs, self.placement, records),
            meta={
                "topology": self.topology.describe(),
                "placement": self.placement_policy,
                "seed": self.seed,
                "n_jobs": len(self.jobs),
                "placement_map": {name: list(nodes) for name, nodes
                                  in self.placement.items()},
            })
        return profile
