"""Seeded background-traffic generators: the fleet's noisy neighbors.

A :class:`TrafficSpec` describes an offered-load pattern over a tenant's
node set; :func:`offered_load` expands it *eagerly* into a deterministic
event sequence ``[(time, src, dst, nbytes), ...]`` from a PCG64 stream
keyed by the spec's seed — same seed, same events, bit for bit, which is
what makes congested fleet runs reproducible and shardable across the
``exp`` process pool.  Three patterns ship:

* ``onoff`` — alternating on/off windows; during an on-window every node
  sends one message per period to a freshly drawn partner;
* ``permutation`` — a fixed seeded permutation; each node streams to its
  image every period (the classic adversarial pattern for multi-path
  fabrics);
* ``incast`` — all nodes burst toward one seeded target simultaneously.

The generators only *describe* load; :mod:`repro.fleet.tenancy` replays
the events through real MPI sends so the traffic contends on the routed
fabric's link queues like any first-class tenant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.units import KiB, ms, us

TRAFFIC_KINDS = ("onoff", "permutation", "incast")


@dataclass(frozen=True)
class TrafficSpec:
    """A seeded background-traffic pattern (JSON-safe)."""

    kind: str = "onoff"
    #: Bytes per message.
    nbytes: int = 256 * KiB
    #: Spacing between message starts during active windows.
    period: float = us(60)
    #: Messages per on-window (``onoff``) or per burst (``incast``).
    burst: int = 8
    #: Idle gap between on-windows / bursts.
    gap: float = us(300)
    #: No events are generated at or after this virtual time.
    horizon: float = ms(4)
    seed: int = 0

    def __post_init__(self):
        if self.kind not in TRAFFIC_KINDS:
            raise ConfigError(
                f"unknown traffic kind {self.kind!r} "
                f"(have: {', '.join(TRAFFIC_KINDS)})")
        if self.nbytes <= 0 or self.burst < 1:
            raise ConfigError("traffic needs positive nbytes and burst")
        if self.period <= 0 or self.gap < 0 or self.horizon <= 0:
            raise ConfigError("traffic times must be positive")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind, "nbytes": self.nbytes,
            "period": self.period, "burst": self.burst, "gap": self.gap,
            "horizon": self.horizon, "seed": self.seed,
        }


def offered_load(spec: TrafficSpec,
                 nodes: list[int]) -> list[tuple[float, int, int, int]]:
    """Expand a spec into its deterministic offered-load event sequence.

    Returns ``[(time, src_node, dst_node, nbytes), ...]`` sorted by
    time; ``src``/``dst`` are drawn from ``nodes`` only.  Purely a
    function of ``(spec, nodes)`` — no simulator state involved.
    """
    if len(nodes) < 2:
        raise ConfigError("traffic needs at least two nodes")
    rng = np.random.Generator(np.random.PCG64(spec.seed))
    events: list[tuple[float, int, int, int]] = []
    if spec.kind == "onoff":
        t = 0.0
        while t < spec.horizon:
            for i in range(spec.burst):
                at = t + i * spec.period
                if at >= spec.horizon:
                    break
                src, dst = rng.choice(len(nodes), size=2, replace=False)
                events.append((at, nodes[src], nodes[dst], spec.nbytes))
            t += spec.burst * spec.period + spec.gap
    elif spec.kind == "permutation":
        perm = rng.permutation(len(nodes))
        # Re-draw fixed points so every node genuinely sends.
        while any(perm[i] == i for i in range(len(nodes))):
            perm = rng.permutation(len(nodes))
        t = 0.0
        while t < spec.horizon:
            jitter = rng.random(len(nodes)) * spec.period * 0.1
            for i, node in enumerate(nodes):
                events.append((t + float(jitter[i]), node,
                               nodes[int(perm[i])], spec.nbytes))
            t += spec.period
    else:  # incast
        target = int(rng.integers(len(nodes)))
        t = 0.0
        while t < spec.horizon:
            for i, node in enumerate(nodes):
                if i == target:
                    continue
                for b in range(spec.burst):
                    at = t + b * spec.period
                    if at < spec.horizon:
                        events.append((at, node, nodes[target], spec.nbytes))
            t += spec.burst * spec.period + spec.gap
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    return events
