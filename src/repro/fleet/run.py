"""Fleet entry points: profiles, contended rankings, re-convergence.

Three layers of experiment sit on the tenant scheduler:

* :func:`run_fleet` — run a job mix on one shared routed fabric and
  return its :class:`~repro.fleet.profile.FleetProfile`;
  :func:`run_fleet_with_slowdowns` additionally runs every MPI job
  *alone* on an identical fabric and attaches per-job slowdown factors.
* :func:`run_contended_pair` — one cell of the fig08-style ranking
  table: a partitioned pair driven by one transport-module descriptor
  while ``level`` background-traffic tenants hammer the shared global
  link.  Level 0 is the same routed fabric with no neighbors, so the
  contended rankings are directly comparable to the quiet ones.
* :func:`run_reconvergence` — the live-autotuning probe: an autotuned
  pair runs for ``quiet + congested + tail`` rounds while a noisy
  neighbor arrives at round ``quiet`` and departs at
  ``quiet + congested``; the controller's per-round trajectory is
  folded into re-convergence rounds and regret.

Everything here is purely a function of its arguments (seeded RNG, no
wall clock), which is what lets ``ext_fleet`` shard points across the
``exp`` process pool with byte-identical serial/parallel results.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import ClusterConfig
from repro.fleet.profile import FleetProfile, attach_slowdowns
from repro.fleet.spec import JobSpec, _hashable
from repro.fleet.tenancy import TAG_STRIDE, TenantScheduler
from repro.fleet.traffic import TrafficSpec
from repro.ib.topology import RoutedDragonflyPlus
from repro.mem.buffer import Buffer
from repro.units import KiB, ms, us


def default_topology(groups: int = 2) -> RoutedDragonflyPlus:
    """The fleet test fabric: 2 nodes/leaf, 2 leaves/group."""
    return RoutedDragonflyPlus(nodes_per_leaf=2, leaves_per_group=2,
                               groups=groups)


def background_jobs(level: int, seed: int = 0,
                    nbytes: int = 256 * KiB,
                    period: float = us(30),
                    horizon: float = ms(4)) -> list[JobSpec]:
    """``level`` permutation-traffic tenants (2 nodes each).

    Placed with the ``spread`` policy after a cross-group pair, each
    tenant straddles the global links, so every level adds one more
    continuous contender on the spine.
    """
    return [
        JobSpec(name=f"bg{i}", kind="traffic", n_ranks=2,
                traffic=TrafficSpec(kind="permutation", nbytes=nbytes,
                                    period=period, horizon=horizon,
                                    seed=seed * 101 + i))
        for i in range(level)
    ]


def run_fleet(jobs: list[JobSpec], topology=None, placement: str = "packed",
              seed: int = 0, config: Optional[ClusterConfig] = None,
              module_overrides: Optional[dict] = None) -> FleetProfile:
    """Run a job mix on one shared routed fabric."""
    topology = topology if topology is not None else default_topology()
    scheduler = TenantScheduler(jobs, topology, config=config,
                                placement=placement, seed=seed,
                                module_overrides=module_overrides)
    return scheduler.run()


def isolated_baselines(jobs: list[JobSpec], topology=None,
                       placement: str = "packed", seed: int = 0,
                       config: Optional[ClusterConfig] = None
                       ) -> dict[str, float]:
    """Mean iteration time of every MPI job run *alone* on the fabric.

    Each job keeps the node set it has in the combined run (the full
    job list is placed, then all but one tenant are dropped), so the
    comparison isolates contention, not placement.
    """
    topology = topology if topology is not None else default_topology()
    from repro.fleet.spec import place_jobs

    placement_map = place_jobs(jobs, topology, placement, seed)
    baselines: dict[str, float] = {}
    for job in jobs:
        if job.kind == "traffic":
            continue
        solo = TenantScheduler(
            [job], topology, config=config, placement=placement, seed=seed,
            placement_map={job.name: placement_map[job.name]})
        profile = solo.run()
        mean = profile.tenants[job.name].mean_iteration
        if mean is not None:
            baselines[job.name] = mean
    return baselines


def run_fleet_with_slowdowns(jobs: list[JobSpec], topology=None,
                             placement: str = "packed", seed: int = 0,
                             config: Optional[ClusterConfig] = None
                             ) -> FleetProfile:
    """The combined run plus per-job slowdowns vs isolated baselines."""
    topology = topology if topology is not None else default_topology()
    profile = run_fleet(jobs, topology, placement, seed, config)
    baselines = isolated_baselines(jobs, topology, placement, seed, config)
    attach_slowdowns(profile, baselines)
    profile.meta["isolated_baselines"] = dict(baselines)
    return profile


# -- contended ranking (fig08 under congestion) -------------------------


def run_contended_pair(module=("persist",), level: int = 0,
                       n_partitions: int = 16,
                       partition_size: int = 64 * KiB,
                       iterations: int = 6, warmup: int = 2,
                       compute: float = 0.0, seed: int = 0,
                       config: Optional[ClusterConfig] = None) -> dict:
    """One ranking cell: a partitioned pair at one contention level.

    The pair lands cross-group (spread placement), the ``level``
    background tenants cross the same global links.  Returns the mean
    iteration time plus the profile's contention evidence.
    """
    jobs = [JobSpec(name="mpi", kind="pair", n_ranks=2,
                    n_partitions=n_partitions,
                    partition_size=partition_size,
                    iterations=iterations, warmup=warmup, compute=compute,
                    module=_hashable(module))]
    jobs += background_jobs(level, seed=seed + 1)
    profile = run_fleet(jobs, placement="spread", seed=seed, config=config)
    view = profile.tenants["mpi"]
    spine = {name: stats["utilization"]
             for name, stats in profile.links.items()
             if name.startswith("global")}
    return {
        "mean_time": view.mean_iteration,
        "iteration_times": view.iteration_times,
        "total_bytes": n_partitions * partition_size,
        "level": level,
        "spine_utilization": max(spine.values()) if spine else 0.0,
        "makespan": profile.makespan,
    }


# -- live autotuner re-convergence --------------------------------------


def _plan_key(round_rec: dict) -> tuple:
    return (round_rec["n_transport"], round_rec["n_qps"],
            round_rec["delta"])


def _best_plan(rounds: list[dict]) -> tuple[Optional[tuple], dict]:
    """The plan with the lowest mean completion over ``rounds``."""
    by_plan: dict[tuple, list[float]] = {}
    for rec in rounds:
        if rec["completion_time"] is None or rec.get("quarantined"):
            continue
        by_plan.setdefault(_plan_key(rec), []).append(
            rec["completion_time"])
    means = {plan: float(np.mean(times)) for plan, times in by_plan.items()}
    if not means:
        return None, {}
    return min(means, key=means.get), means


def _plan_means_table(means: dict) -> list:
    """JSON-safe ``[[plan_triple, mean], ...]`` sorted by plan."""
    def key(plan):
        return (plan[0], plan[1], -1.0 if plan[2] is None else plan[2])

    return [[list(plan), means[plan]] for plan in sorted(means, key=key)]


def run_reconvergence(autotune_params: dict,
                      quiet_rounds: int = 14,
                      congested_rounds: int = 30,
                      tail_rounds: int = 8,
                      n_partitions: int = 16,
                      partition_size: int = 64 * KiB,
                      compute: float = 0.0,
                      neighbor_nbytes: int = 256 * KiB,
                      neighbor_pairs: int = 2,
                      neighbor_streams: int = 4,
                      seed: int = 0,
                      config: Optional[ClusterConfig] = None,
                      hold: int = 3,
                      tolerance: float = 0.05) -> dict:
    """Drive an autotuned pair through a noisy-neighbor episode.

    The neighbor — ``neighbor_pairs`` cross-group node pairs, each
    running ``neighbor_streams`` concurrent closed-loop message
    streams (send ``neighbor_nbytes``, await delivery, repeat) in both
    directions — arrives at round ``quiet_rounds`` and departs at
    ``quiet_rounds + congested_rounds``.  Closed-loop streams are the
    stationary way to congest a link: open-loop pacing above line rate
    grows the queue without bound (every round slower than the last,
    so no plan comparison is meaningful), while ``k`` closed-loop
    streams hold a bounded ``~k``-message standing queue on the shared
    spine links indefinitely.  ``neighbor_streams`` sets how deep that
    standing queue is; the defaults congest the spine enough that
    aggregation into fewer, larger messages beats the quiet-best wide
    layout (the regime :func:`run_contended_pair` reaches at level 2).
    Returns the per-round trajectory plus the re-convergence summary:
    quiet-best and congested-best plans, rounds to re-converge after
    arrival (first congested round starting ``hold`` consecutive
    rounds on *near-optimal* plans — within ``tolerance`` of the
    congested-best mean), and the cumulative regret vs always playing
    the congested-best plan.
    """
    from repro.autotune import build_autotuner

    total = quiet_rounds + congested_rounds + tail_rounds
    arrive, depart = quiet_rounds, quiet_rounds + congested_rounds
    agg = build_autotuner(dict(autotune_params))
    job = JobSpec(name="mpi", kind="pair", n_ranks=2,
                  n_partitions=n_partitions, partition_size=partition_size,
                  iterations=total, warmup=0, compute=compute)
    topology = default_topology()
    scheduler = TenantScheduler([job], topology, config=config,
                                placement="spread", seed=seed,
                                module_overrides={"mpi": agg})
    env = scheduler.cluster.env
    # Neighbor endpoints: with spread placement the pair sits on nodes
    # (0, groups*leaves... ) — pick the next spread slots so the
    # neighbor crosses the same global links on different leaves.
    pair_nodes = set(scheduler.placement["mpi"])
    per_group = topology.nodes_per_group
    spread_order = [g * per_group + i for i in range(per_group)
                    for g in range(topology.groups)]
    free = [n for n in spread_order if n not in pair_nodes]
    if len(free) < 2 * neighbor_pairs:
        raise ValueError(
            f"{neighbor_pairs} neighbor pairs need {2 * neighbor_pairs} "
            f"free nodes; only {len(free)} available")
    endpoints = [(scheduler.cluster.add_process(node_id=free[2 * i]),
                  scheduler.cluster.add_process(node_id=free[2 * i + 1]))
                 for i in range(neighbor_pairs)]

    state = {"round": 0}
    arrive_ev = env.event()

    def hook(_job_name, round_no):
        state["round"] = round_no
        if round_no == arrive and not arrive_ev.triggered:
            arrive_ev.succeed(None)

    scheduler.round_hooks.append(hook)

    def stream(tx, rx_proc, base_tag):
        yield arrive_ev
        i = 0
        while state["round"] < depart:
            done = env.event()
            tag = base_tag + i

            def rx(done=done, tag=tag):
                buf = Buffer(neighbor_nbytes, backed=False)
                yield from rx_proc.recv(buf, source=tx.rank, tag=tag)
                done.succeed(None)

            env.process(rx())
            sbuf = Buffer(neighbor_nbytes, backed=False)
            yield from tx.send(sbuf, dest=rx_proc.rank, tag=tag)
            yield done
            i += 1

    loop = 0
    for a, b in endpoints:
        for tx, rx_proc in ((a, b), (b, a)):
            for _ in range(neighbor_streams):
                scheduler.cluster.spawn(
                    stream(tx, rx_proc, TAG_STRIDE * (91 + loop)))
                loop += 1
    scheduler.launch()
    scheduler.cluster.run()

    controller = agg.controller
    rounds = controller.round_plans() if controller is not None else []
    quiet = [r for r in rounds if r["round"] < arrive]
    # The arrival round itself is mixed-regime — the neighbor starts
    # sending mid-round, so it usually completes at quiet speed.  Keep
    # it out of the congested statistics (it would credit whatever
    # plan happened to run it with a spuriously fast congested
    # sample).
    congested = [r for r in rounds if arrive < r["round"] < depart]
    quiet_best, quiet_means = _best_plan(quiet)
    congested_best, congested_means = _best_plan(congested)
    plan_changed = (quiet_best is not None and congested_best is not None
                    and quiet_best != congested_best)
    # Re-convergence is judged against the *near-optimal set*: every
    # plan whose congested mean is within ``tolerance`` of the best.
    # Congestion ties plans that differ only on quiet-path knobs (QP
    # fan-out), and a tuner toggling between statistical ties has
    # re-converged in every meaningful sense.
    reconverged_round = None
    good_plans: set = set()
    if congested_best is not None:
        cutoff = congested_means[congested_best] * (1 + tolerance)
        good_plans = {plan for plan, mean in congested_means.items()
                      if mean <= cutoff}
        run_len = 0
        for rec in congested:
            if _plan_key(rec) in good_plans:
                run_len += 1
                if run_len >= hold:
                    reconverged_round = rec["round"] - (hold - 1)
                    break
            else:
                run_len = 0
    regret = None
    if congested_best is not None:
        base = congested_means[congested_best]
        regret = float(sum(rec["completion_time"] - base
                           for rec in congested
                           if rec["completion_time"] is not None))
    return {
        "rounds": rounds,
        "arrive_round": arrive,
        "depart_round": depart,
        "neighbor": {"pairs": neighbor_pairs, "nbytes": neighbor_nbytes,
                     "streams": neighbor_streams},
        "quiet_plan_means": _plan_means_table(quiet_means),
        "congested_plan_means": _plan_means_table(congested_means),
        "quiet_best": list(quiet_best) if quiet_best else None,
        "congested_best": list(congested_best) if congested_best else None,
        "quiet_best_time": (quiet_means.get(quiet_best)
                            if quiet_best else None),
        "congested_best_time": (congested_means.get(congested_best)
                                if congested_best else None),
        "near_optimal_plans": [list(plan) for plan in
                               sorted(good_plans,
                                      key=lambda p: congested_means[p])],
        "plan_changed": plan_changed,
        "reconverged_round": reconverged_round,
        "rounds_to_reconverge": (reconverged_round - arrive
                                 if reconverged_round is not None else None),
        "regret": regret,
        # Adapted = the congested optimum differs from the quiet one
        # (the quiet-best plan is not even near-optimal under load) AND
        # the tuner settled into the near-optimal set.
        "adapted": (plan_changed and reconverged_round is not None
                    and quiet_best not in good_plans),
    }
