"""Plan mutation: the neighborhood a search policy explores.

:func:`neighbors` enumerates the single-step rewrites of a leaf plan
— halve/double the partition count, move the QP pool toward the
WR-concurrency caps, toggle or rescale the δ-timer — legalizes each
against the config, and dedups by digest.  This is the move set of
``repro.autotune.plan_policy.PlanMutationPolicy``: instead of
drawing arms from a fixed grid, the policy walks this graph from a
model-seeded start.

Every mutation stays inside the provisioning envelope the adaptive
aggregator sets up (``qp_cap``), so a mid-run rewrite never asks for
more QPs than were created.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional

from repro.config import ClusterConfig
from repro.plan.ir import Aggregate, Partition, Plan, QPPool
from repro.plan.passes import Legalize, PassContext


def neighbors(plan: Plan, n_user: int, config: ClusterConfig,
              deltas: Iterable[Optional[float]] = (),
              qp_cap: Optional[int] = None) -> list[Plan]:
    """Single-step mutations of a leaf plan, legalized and deduped."""
    from repro.core.aggregators import _qps_for

    part = plan.first(Partition)
    if part is None:
        return []
    pool = plan.first(QPPool)
    agg = plan.first(Aggregate)
    n_qps = pool.n if pool is not None else 1
    delta = agg.delta if agg is not None else None

    candidates: list[Plan] = []

    def _variant(n_transport: int, qps: int,
                 new_delta: Optional[float]) -> None:
        n_transport = max(1, min(n_transport, n_user))
        cap = min(n_transport,
                  qp_cap if qp_cap is not None
                  else _qps_for(n_user, n_user, config))
        qps = max(1, min(qps, cap))
        ops = []
        for op in plan.ops:
            if isinstance(op, Partition):
                op = replace(op, n=n_transport)
            elif isinstance(op, QPPool):
                op = replace(op, n=qps)
            elif isinstance(op, Aggregate):
                if new_delta is None and not op.sg:
                    continue
                op = replace(op, delta=new_delta)
            ops.append(op)
        if pool is None and qps != n_qps:
            ops.append(QPPool(n=qps))
        if agg is None and new_delta is not None:
            ops.append(Aggregate(delta=new_delta))
        candidates.append(Plan(tuple(ops)))

    # Partition moves (stay on powers of two; legalize re-rounds the
    # n_user clamp if it lands off-grid).
    _variant(part.n * 2, n_qps, delta)
    if part.n > 1:
        _variant(part.n // 2, n_qps, delta)

    # QP-pool moves: halve/double plus the two concurrency caps the
    # model-seeded grid uses.
    qp_moves = {n_qps * 2, max(1, n_qps // 2),
                _qps_for(part.n, part.n, config),
                _qps_for(part.n, n_user, config)}
    for qps in sorted(qp_moves):
        if qps != n_qps:
            _variant(part.n, qps, delta)

    # δ moves: toggle to each candidate value, and rescale a live δ.
    for candidate in deltas:
        if candidate != delta:
            _variant(part.n, n_qps, candidate)
    if delta is not None:
        _variant(part.n, n_qps, delta * 2)
        _variant(part.n, n_qps, delta / 2)

    legalize = Legalize()
    ctx = PassContext(config=config, n_user=n_user)
    seen = {plan.digest}
    out = []
    for candidate in candidates:
        legal = legalize.run(candidate, ctx)
        if legal.digest not in seen:
            seen.add(legal.digest)
            out.append(legal)
    return out
