"""Canonical textual form for plans.

The printed form is the plan's identity: :attr:`Plan.digest` hashes
exactly this text, so the printer must be deterministic and must be a
fixed point under ``print → parse → print`` (guarded by
``tests/test_plan/test_roundtrip.py``).  Rules:

* one op per line, two-space indent per nesting level;
* attributes in dataclass field order, ``key=value``, with
  default-valued attributes omitted;
* values: ints verbatim, floats via ``repr`` (shortest round-trip
  form), ``none`` / ``true`` / ``false`` keywords, strings as bare
  identifiers;
* a leaf op with no printed attributes still gets ``()`` so every op
  line is unambiguous (``persist()``);
* region bodies open ``{`` on the op line; ``fallback`` bodies print
  as ``rung { ... }`` elements.
"""

from __future__ import annotations

from dataclasses import MISSING, fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.plan.ir import Plan, PlanOp

#: Identifiers the parser treats as literals, not strings.
RESERVED = {"none", "true", "false", "plan", "rung"}


def format_value(value: object) -> str:
    """One attribute value in canonical form."""
    if value is None:
        return "none"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        if not value.isidentifier() or value in RESERVED:
            raise ValueError(f"not a printable identifier: {value!r}")
        return value
    raise ValueError(f"unprintable plan attribute: {value!r}")


def _printed_attrs(op: "PlanOp") -> list[str]:
    out = []
    defaults = {f.name: f.default for f in fields(op)}
    for key, value in op.attrs():
        default = defaults.get(key, MISSING)
        # Skip attrs at their default.  The type check keeps bool/int
        # confusion (False == 0, True == 1) from dropping a
        # non-default value.
        if default is not MISSING and default == value \
                and type(default) is type(value):
            continue
        out.append(f"{key}={format_value(value)}")
    return out


def _print_op(op: "PlanOp", indent: int, lines: list[str]) -> None:
    from repro.plan.ir import Fallback

    pad = "  " * indent
    attrs = _printed_attrs(op)
    head = f"{pad}{op.name}({', '.join(attrs)})" if attrs else \
        f"{pad}{op.name}()"
    bodies = op.bodies()
    if not bodies:
        lines.append(head)
        return
    # Region op: drop the "()" when there are no attrs — the block
    # disambiguates the line (`fallback {`, `edge(neighbor=3) {`).
    if not attrs:
        head = f"{pad}{op.name}"
    lines.append(head + " {")
    wrap = "rung" if isinstance(op, Fallback) else None
    for body in bodies:
        _print_body(body, indent + 1, lines, wrap)
    lines.append(pad + "}")


def _print_body(body: "Plan", indent: int, lines: list[str],
                wrap: str | None) -> None:
    pad = "  " * indent
    if wrap is None:
        for op in body.ops:
            _print_op(op, indent, lines)
        return
    lines.append(f"{pad}{wrap} {{")
    for op in body.ops:
        _print_op(op, indent + 1, lines)
    lines.append(pad + "}")


def print_plan(plan: "Plan") -> str:
    """The canonical multi-line text of ``plan`` (no trailing newline)."""
    lines = ["plan {"]
    for op in plan.ops:
        _print_op(op, 1, lines)
    lines.append("}")
    return "\n".join(lines)
