"""The communication-plan IR: typed ops with a stable textual form.

A :class:`Plan` is an ordered, immutable tree of :class:`PlanOp` nodes
describing *what a partitioned transfer should do* — how many
transport partitions, how many QPs, whether the δ-timer path is
armed, how edges of a collective differ, and which fallback rungs a
degradation ladder carries — without saying *how* the transport
engine realizes it.  Before this IR existed the same decisions lived
as imperative side effects in four places (``coll`` per-edge specs,
``autotune`` candidate arms, ``mpi.ladder`` rung lists and the
engine's rail schedule); a plan makes them one printable, diffable,
hashable artifact:

* :attr:`Plan.text` is the canonical textual form — printing is
  deterministic, and ``parse(plan.text)`` reproduces an equal plan
  (print → parse → print is a fixed point, guarded by tests);
* :attr:`Plan.digest` is a content digest of the text, the identity
  used by the tuning store, pass traces and hoisting;
* :mod:`repro.plan.passes` rewrites plans (fuse, split, hoist,
  legalize) and :mod:`repro.plan.lower` emits the per-edge
  ``ModuleSpec`` configuration the transport engine already consumes.

Op vocabulary (see ``docs/PLAN_IR.md`` for the full reference)::

    partition(n=8)            # 8 transport partitions
    qp_pool(n=2)              # QPs provisioned for the request
    aggregate(delta=3.5e-05)  # arm the δ-timer flush path
    stripe(rails=2)           # stripe transport groups across rails
    tree(kind=binomial, root=0)
    edge(neighbor=3) { ... }  # per-edge subplan of a collective
    fallback { rung { ... } rung { persist() } }
    persist() / channel()     # baseline transports
    native()                  # placeholder: the caller's preferred rung
    send(offset=0, nbytes=65536)  # one materialized WR
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from functools import cached_property
from typing import ClassVar, Iterator, Optional, Type, TypeVar

from repro.errors import ConfigError


class PlanError(ConfigError):
    """An ill-formed plan (bad op attributes, unparseable text)."""


_O = TypeVar("_O", bound="PlanOp")

#: ``op name -> op class`` registry the parser resolves against.
OPS: dict[str, Type["PlanOp"]] = {}


@dataclass(frozen=True)
class PlanOp:
    """One IR node.  Subclasses declare attrs as dataclass fields."""

    #: Canonical op name in the textual form.
    name: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if cls.name:
            if cls.name in OPS:
                raise ValueError(f"duplicate plan op {cls.name!r}")
            OPS[cls.name] = cls

    # -- structure -----------------------------------------------------

    def attrs(self) -> list[tuple[str, object]]:
        """Ordered (key, value) attribute pairs (plan-valued excluded)."""
        out = []
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Plan) or _is_plan_tuple(value):
                continue
            out.append((f.name, value))
        return out

    def bodies(self) -> list["Plan"]:
        """Nested subplans in print order (empty for leaf ops)."""
        out = []
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Plan):
                out.append(value)
            elif _is_plan_tuple(value):
                out.extend(value)
        return out

    def validate(self) -> None:
        """Check attribute domains; raise :class:`PlanError`."""


def _is_plan_tuple(value) -> bool:
    return (isinstance(value, tuple) and len(value) > 0
            and all(isinstance(v, Plan) for v in value))


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise PlanError(message)


# ---------------------------------------------------------------- leaf ops


@dataclass(frozen=True)
class Partition(PlanOp):
    """Split the payload into ``n`` transport partitions."""

    n: int
    name: ClassVar[str] = "partition"

    def validate(self):
        _require(isinstance(self.n, int) and self.n >= 1,
                 f"partition n must be a positive int, got {self.n!r}")


@dataclass(frozen=True)
class QPPool(PlanOp):
    """Provision ``n`` queue pairs for the request."""

    n: int
    name: ClassVar[str] = "qp_pool"

    def validate(self):
        _require(isinstance(self.n, int) and self.n >= 1,
                 f"qp_pool n must be a positive int, got {self.n!r}")


@dataclass(frozen=True)
class Aggregate(PlanOp):
    """Arm the δ-timer aggregation path (``delta=None`` = plain path)."""

    delta: Optional[float] = None
    #: Ablation: flush holes as one multi-SGE WR (Section IV-D).
    sg: bool = False
    name: ClassVar[str] = "aggregate"

    def validate(self):
        _require(self.delta is None or
                 (isinstance(self.delta, (int, float)) and self.delta >= 0),
                 f"aggregate delta must be >= 0 or none, got {self.delta!r}")


@dataclass(frozen=True)
class Stripe(PlanOp):
    """Stripe transport groups across ``rails`` NIC ports."""

    rails: int
    name: ClassVar[str] = "stripe"

    def validate(self):
        _require(isinstance(self.rails, int) and self.rails >= 1,
                 f"stripe rails must be a positive int, got {self.rails!r}")


@dataclass(frozen=True)
class Tree(PlanOp):
    """Collective tree shape (binomial broadcast/reduction)."""

    kind: str = "binomial"
    root: int = 0
    name: ClassVar[str] = "tree"

    def validate(self):
        _require(isinstance(self.kind, str) and self.kind.isidentifier(),
                 f"tree kind must be an identifier, got {self.kind!r}")
        _require(isinstance(self.root, int) and self.root >= 0,
                 f"tree root must be a non-negative int, got {self.root!r}")


@dataclass(frozen=True)
class Persist(PlanOp):
    """The ``part_persist`` baseline transport."""

    name: ClassVar[str] = "persist"


@dataclass(frozen=True)
class Channel(PlanOp):
    """The QP-free shared p2p channel transport."""

    name: ClassVar[str] = "channel"


@dataclass(frozen=True)
class Native(PlanOp):
    """Placeholder rung: the caller's preferred transport goes here.

    ``strategy`` optionally names the aggregation strategy that will
    fill the slot (``ploggp``, ``autotune``, ...) for display; the
    placeholder must be substituted before lowering.
    """

    strategy: Optional[str] = None
    name: ClassVar[str] = "native"

    def validate(self):
        _require(self.strategy is None or
                 (isinstance(self.strategy, str)
                  and self.strategy.isidentifier()),
                 f"native strategy must be an identifier, "
                 f"got {self.strategy!r}")


@dataclass(frozen=True)
class Send(PlanOp):
    """One materialized WR covering ``[offset, offset + nbytes)``."""

    offset: int
    nbytes: int
    name: ClassVar[str] = "send"

    def validate(self):
        _require(isinstance(self.offset, int) and self.offset >= 0,
                 f"send offset must be >= 0, got {self.offset!r}")
        _require(isinstance(self.nbytes, int) and self.nbytes >= 1,
                 f"send nbytes must be >= 1, got {self.nbytes!r}")


# ------------------------------------------------------------- region ops


@dataclass(frozen=True)
class Edge(PlanOp):
    """Per-neighbor subplan of a collective."""

    neighbor: int
    body: "Plan"
    name: ClassVar[str] = "edge"

    def validate(self):
        _require(isinstance(self.neighbor, int) and self.neighbor >= 0,
                 f"edge neighbor must be a non-negative int, "
                 f"got {self.neighbor!r}")


@dataclass(frozen=True)
class Fallback(PlanOp):
    """Graceful-degradation ladder: ordered rungs, preferred first."""

    rungs: tuple["Plan", ...]
    name: ClassVar[str] = "fallback"

    def validate(self):
        _require(isinstance(self.rungs, tuple) and len(self.rungs) >= 1,
                 "fallback needs at least one rung")


# -------------------------------------------------------------------- Plan


@dataclass(frozen=True)
class Plan:
    """An ordered, immutable sequence of plan ops."""

    ops: tuple[PlanOp, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "ops", tuple(self.ops))
        for op in self.ops:
            if not isinstance(op, PlanOp):
                raise PlanError(f"not a plan op: {op!r}")
            op.validate()

    # -- identity ------------------------------------------------------

    @cached_property
    def text(self) -> str:
        """Canonical textual form (stable under print → parse → print)."""
        from repro.plan.printer import print_plan

        return print_plan(self)

    @cached_property
    def digest(self) -> str:
        """Content digest of the canonical text (16 hex chars)."""
        return hashlib.sha256(self.text.encode()).hexdigest()[:16]

    def __str__(self) -> str:
        return self.text

    # -- traversal -----------------------------------------------------

    def find(self, op_type: Type[_O]) -> list[_O]:
        """Top-level ops of ``op_type`` (no descent into bodies)."""
        return [op for op in self.ops if isinstance(op, op_type)]

    def first(self, op_type: Type[_O]) -> Optional[_O]:
        """The first top-level op of ``op_type``, or None."""
        for op in self.ops:
            if isinstance(op, op_type):
                return op
        return None

    def walk(self) -> Iterator[PlanOp]:
        """Every op in the tree, depth-first, in print order."""
        for op in self.ops:
            yield op
            for body in op.bodies():
                yield from body.walk()

    def edges(self) -> dict[int, "Plan"]:
        """Top-level ``edge`` bodies keyed by neighbor rank."""
        out: dict[int, Plan] = {}
        for op in self.find(Edge):
            if op.neighbor in out:
                raise PlanError(
                    f"duplicate edge for neighbor {op.neighbor}")
            out[op.neighbor] = op.body
        return out

    def default_body(self) -> Optional["Plan"]:
        """The non-``edge`` top-level ops as a plan (None if empty)."""
        rest = tuple(op for op in self.ops if not isinstance(op, Edge))
        return Plan(rest) if rest else None

    def payload_bytes(self) -> int:
        """Total bytes of the top-level materialized ``send`` ops."""
        return sum(op.nbytes for op in self.find(Send))


def plan(*ops: PlanOp) -> Plan:
    """Convenience constructor: ``plan(Partition(8), QPPool(2))``."""
    return Plan(tuple(ops))
