"""Lowering: plan IR → the ``ModuleSpec`` objects the engine consumes.

``lower()`` is deliberately thin.  It runs the legalize pipeline and
then pattern-matches the plan's leading op:

* ``fallback { rung {...} ... }``  → ``LadderSpec`` over the lowered
  rungs (the per-edge degradation ladder);
* ``persist()`` / ``channel()``    → the corresponding baseline spec;
* ``native()``                     → error: the placeholder must be
  substituted (see :func:`repro.plan.build.substitute_native`)
  before lowering;
* otherwise ``partition(n)`` [+ ``qp_pool`` + ``aggregate``] →
  ``NativeSpec(FixedAggregation(n, qps, δ))``.

Emitting the *existing* ``FixedAggregation`` class — not a parallel
implementation — is what makes the golden guarantee definitional:
lowering the plan for a static choice constructs exactly the object
the benchmarks always constructed, so timing is bit-identical
(``tests/test_plan/test_lowering.py`` and the golden suite both
check this).

``stripe``/``tree``/``send`` ops are annotations for other layers
(the rail scheduler reads ``NICConfig.n_ports``, collectives own the
tree shape, sends are the analysis form) and lower to nothing here.

Imports of the module-spec classes are deferred into the functions:
``repro.plan`` must stay importable from every layer without pulling
the transport stack (and its import cycles) in at module scope.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.config import ClusterConfig
from repro.plan.ir import (
    Aggregate,
    Channel,
    Fallback,
    Native,
    Partition,
    Persist,
    Plan,
    PlanError,
    QPPool,
)
from repro.plan.passes import PassContext, lowering_pipeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.modules import ModuleSpec


def lower(plan: Plan, config: Optional[ClusterConfig] = None,
          n_user: Optional[int] = None,
          partition_size: Optional[int] = None) -> "ModuleSpec":
    """Legalize ``plan`` and emit the module spec it describes."""
    ctx = PassContext(config=config, n_user=n_user,
                      partition_size=partition_size)
    return _emit(lowering_pipeline().run(plan, ctx))


def _emit(plan: Plan) -> "ModuleSpec":
    if not plan.ops:
        raise PlanError("cannot lower an empty plan")
    head = plan.ops[0]

    if isinstance(head, Fallback):
        from repro.mpi.ladder import LadderSpec

        return LadderSpec([_emit(rung) for rung in head.rungs])

    if isinstance(head, Persist):
        from repro.mpi.persist_module import PersistSpec

        return PersistSpec()

    if isinstance(head, Channel):
        from repro.mpi.channel_module import ChannelSpec

        return ChannelSpec()

    if isinstance(head, Native):
        raise PlanError(
            "cannot lower a native() placeholder — substitute the "
            "preferred transport first (repro.plan.build."
            "substitute_native)")

    part = plan.first(Partition)
    if part is None:
        raise PlanError(
            f"cannot lower plan starting with {head.name!r}: "
            f"expected fallback/persist/channel or a partition(n) leaf")

    from repro.core.aggregators import FixedAggregation
    from repro.core.module import NativeSpec

    pool = plan.first(QPPool)
    agg = plan.first(Aggregate)
    aggregator = FixedAggregation(
        n_transport=part.n,
        n_qps=pool.n if pool is not None else 1,
        timer_delta=agg.delta if agg is not None else None,
        scatter_gather=agg.sg if agg is not None else False,
    )
    return NativeSpec(aggregator)


def lower_edges(plan: Plan, config: Optional[ClusterConfig] = None,
                n_user: Optional[int] = None,
                partition_size: Optional[int] = None,
                ) -> Callable[[int], "ModuleSpec"]:
    """Lower a multi-edge plan into a ``neighbor -> ModuleSpec`` map.

    Top-level ``edge(neighbor=k) { ... }`` bodies lower per neighbor;
    the remaining top-level ops form the default body any other
    neighbor resolves to.  Specs are memoized by body digest, so
    edges sharing a subtree (after
    :class:`~repro.plan.passes.HoistCommonSubtrees`, or simply by
    being written identically) share one spec object.
    """
    ctx = PassContext(config=config, n_user=n_user,
                      partition_size=partition_size)
    legal = lowering_pipeline().run(plan, ctx)
    cache: dict[str, "ModuleSpec"] = {}

    def _lower_body(body: Plan) -> "ModuleSpec":
        spec = cache.get(body.digest)
        if spec is None:
            spec = cache[body.digest] = _emit(body)
        return spec

    per_edge = {neighbor: _lower_body(body)
                for neighbor, body in legal.edges().items()}
    default = legal.default_body()

    def resolve(neighbor: int) -> "ModuleSpec":
        spec = per_edge.get(neighbor)
        if spec is not None:
            return spec
        if default is None:
            raise PlanError(
                f"plan has no edge for neighbor {neighbor} and no "
                f"default body")
        return _lower_body(default)

    return resolve
