"""Constructors bridging the existing decision objects and the IR.

Everything here is a pure translation: a 3-knob choice, an
``AggregationPlan``, or a ``ModuleSpec`` tree in; a :class:`Plan`
out (or back).  The translations are inverses where that is
meaningful — ``spec_to_plan(lower(p)) == p`` for lowered leaf plans —
so the IR can wrap the current system without changing any decision.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.config import ClusterConfig
from repro.plan.ir import (
    Aggregate,
    Channel,
    Fallback,
    Native,
    Partition,
    Persist,
    Plan,
    PlanError,
    QPPool,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.aggregators import AggregationPlan, Aggregator
    from repro.mpi.modules import ModuleSpec


def leaf_plan(n_transport: int, n_qps: int,
              delta: Optional[float] = None,
              scatter_gather: bool = False) -> Plan:
    """The 3-knob plan: ``partition`` + ``qp_pool`` [+ ``aggregate``]."""
    ops = [Partition(n=n_transport), QPPool(n=n_qps)]
    if delta is not None or scatter_gather:
        ops.append(Aggregate(delta=delta, sg=scatter_gather))
    return Plan(tuple(ops))


def choice_plan(choice) -> Plan:
    """Plan for an autotune ``PlanChoice`` (duck-typed: 3 knobs)."""
    return leaf_plan(choice.n_transport, choice.n_qps,
                     delta=choice.delta)


def aggregation_plan(agg: "AggregationPlan") -> Plan:
    """Plan for a resolved per-request ``AggregationPlan``."""
    return leaf_plan(agg.n_transport, agg.n_qps,
                     delta=agg.timer_delta,
                     scatter_gather=agg.scatter_gather)


def default_ladder_plan(strategy: Optional[str] = None) -> Plan:
    """The canonical degradation ladder as one ``fallback`` plan.

    ``native() -> persist() -> channel()`` — the exact rung chain
    ``repro.coll.plans.ladder_modules`` has always built; the
    ``native()`` slot is the caller's preferred transport
    (:func:`substitute_native`).
    """
    return Plan((Fallback(rungs=(
        Plan((Native(strategy=strategy),)),
        Plan((Persist(),)),
        Plan((Channel(),)),
    )),))


def substitute_native(plan: Plan, replacement: Plan) -> Plan:
    """Replace every ``native()`` slot with ``replacement``'s ops.

    A rung that becomes identical to an existing sibling rung after
    substitution is dropped (substituting ``persist()`` into the
    default ladder yields ``persist -> channel``, not
    ``persist -> persist -> channel`` — matching what
    ``ladder_modules`` always did for a persist top rung).
    """
    from repro.plan.passes import rewrite_plans

    def _sub(p: Plan) -> Plan:
        ops = []
        for op in p.ops:
            if isinstance(op, Native):
                ops.extend(replacement.ops)
            elif isinstance(op, Fallback):
                rungs = []
                digests = set()
                for rung in op.rungs:
                    if rung.digest in digests:
                        continue
                    digests.add(rung.digest)
                    rungs.append(rung)
                ops.append(Fallback(rungs=tuple(rungs)))
            else:
                ops.append(op)
        return Plan(tuple(ops))

    return rewrite_plans(plan, _sub)


def spec_to_plan(spec: "ModuleSpec") -> Plan:
    """Recover the plan a ``ModuleSpec`` tree describes.

    ``NativeSpec`` over a ``FixedAggregation`` round-trips exactly;
    any other aggregator renders as a ``native(strategy=...)``
    placeholder — its knobs are not static, so the plan records the
    strategy instead (use :func:`module_plan` with a workload to
    resolve them).
    """
    from repro.core.aggregators import FixedAggregation
    from repro.core.module import NativeSpec
    from repro.mpi.channel_module import ChannelSpec
    from repro.mpi.ladder import LadderSpec
    from repro.mpi.persist_module import PersistSpec

    if isinstance(spec, LadderSpec):
        return Plan((Fallback(rungs=tuple(
            spec_to_plan(rung) for rung in spec.rungs)),))
    if isinstance(spec, PersistSpec):
        return Plan((Persist(),))
    if isinstance(spec, ChannelSpec):
        return Plan((Channel(),))
    if isinstance(spec, NativeSpec):
        agg = spec.aggregator
        if isinstance(agg, FixedAggregation):
            return leaf_plan(agg.n_transport, agg.n_qps,
                             delta=agg.timer_delta,
                             scatter_gather=agg.scatter_gather)
        return Plan((Native(strategy=_strategy_name(agg)),))
    raise PlanError(f"no plan form for module spec {spec.name!r}")


def _strategy_name(aggregator: "Aggregator") -> str:
    name = type(aggregator).__name__
    for suffix in ("Aggregator", "Aggregation"):
        name = name.removesuffix(suffix)
    out = []
    for ch in name:
        if ch.isupper() and out:
            out.append("_")
        out.append(ch.lower())
    return "".join(out) or "native"


def module_plan(module, n_user: int, partition_size: int,
                config: ClusterConfig) -> Plan:
    """Resolve a module descriptor's plan for one workload.

    ``module`` follows the ``repro.coll`` convention: ``None`` means
    the persist baseline, an ``Aggregator`` is asked for its
    ``AggregationPlan`` at this workload, and a ``ModuleSpec``
    recovers through :func:`spec_to_plan`.
    """
    from repro.core.aggregators import Aggregator
    from repro.mpi.modules import ModuleSpec

    if module is None:
        return Plan((Persist(),))
    if isinstance(module, Aggregator):
        return aggregation_plan(
            module.plan(n_user, partition_size, config))
    if isinstance(module, ModuleSpec):
        return spec_to_plan(module)
    raise PlanError(f"cannot derive a plan from {module!r}")
