"""Communication-plan IR: typed ops, rewrite passes, lowering.

See ``docs/PLAN_IR.md`` for the op reference, the pass pipeline, and
the add-a-pass walkthrough.  Quick tour::

    from repro.plan import leaf_plan, lower, parse

    p = leaf_plan(8, 2, delta=35e-6)
    print(p)                  # canonical text; p.digest is its identity
    q = parse(p.text)         # round-trips: q == p, q.digest == p.digest
    spec = lower(p, config)   # NativeSpec(FixedAggregation(8, 2, δ))
"""

from repro.plan.build import (
    aggregation_plan,
    choice_plan,
    default_ladder_plan,
    leaf_plan,
    module_plan,
    spec_to_plan,
    substitute_native,
)
from repro.plan.ir import (
    OPS,
    Aggregate,
    Channel,
    Edge,
    Fallback,
    Native,
    Partition,
    Persist,
    Plan,
    PlanError,
    PlanOp,
    QPPool,
    Send,
    Stripe,
    Tree,
    plan,
)
from repro.plan.lower import lower, lower_edges
from repro.plan.mutate import neighbors
from repro.plan.parse import parse
from repro.plan.passes import (
    MAX_WR_BYTES,
    FuseAdjacentSends,
    HoistCommonSubtrees,
    Legalize,
    MaterializeSends,
    PassContext,
    PassPipeline,
    RewritePass,
    SplitOversizedWRs,
    analysis_pipeline,
    lowering_pipeline,
    rewrite_plans,
)

__all__ = [
    # ir
    "Plan", "PlanOp", "PlanError", "OPS", "plan",
    "Partition", "QPPool", "Aggregate", "Stripe", "Tree",
    "Persist", "Channel", "Native", "Send", "Edge", "Fallback",
    # parse / build
    "parse", "leaf_plan", "choice_plan", "aggregation_plan",
    "default_ladder_plan", "substitute_native", "spec_to_plan",
    "module_plan",
    # passes
    "PassContext", "PassPipeline", "RewritePass", "rewrite_plans",
    "Legalize", "MaterializeSends", "SplitOversizedWRs",
    "FuseAdjacentSends", "HoistCommonSubtrees",
    "lowering_pipeline", "analysis_pipeline", "MAX_WR_BYTES",
    # lower / mutate
    "lower", "lower_edges", "neighbors",
]
