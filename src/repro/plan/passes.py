"""Rewrite passes over plans, and the pipeline that sequences them.

A :class:`RewritePass` maps plan → plan; :class:`PassPipeline` runs a
sequence of them and records a digest trace so a transformation is
auditable after the fact (``pipeline.trace`` after ``run``).  All
passes share two invariants, guarded by
``tests/test_plan/test_passes.py``:

* **byte preservation** — the total materialized payload bytes per
  edge (:meth:`Plan.payload_bytes`) never change;
* **idempotence on legal plans** — running a pass twice equals
  running it once, and :class:`Legalize` is the identity on a plan
  that already respects the limits (this is what keeps the golden
  benchmarks bit-identical when the hot path lowers through it).

The default pipelines:

* :func:`lowering_pipeline` — just ``Legalize``; what
  :func:`repro.plan.lower.lower` runs before emitting module specs.
* :func:`analysis_pipeline` — ``MaterializeSends`` →
  ``SplitOversizedWRs`` → ``FuseAdjacentSends`` →
  ``HoistCommonSubtrees`` → ``Legalize``; the WR-level view used for
  inspection and the plan-diff tooling.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.config import ClusterConfig
from repro.plan.ir import (
    Edge,
    Fallback,
    Partition,
    Plan,
    PlanOp,
    QPPool,
    Send,
    Stripe,
)

#: IB RC upper bound on a single WR's message length (2 GiB).
MAX_WR_BYTES = 2 ** 31


@dataclass(frozen=True)
class PassContext:
    """Everything a pass may consult; plans themselves stay pure."""

    config: Optional[ClusterConfig] = None
    #: User-requested partition count (None = unknown at rewrite time).
    n_user: Optional[int] = None
    #: Bytes per user partition (None = unknown at rewrite time).
    partition_size: Optional[int] = None
    max_wr_bytes: int = MAX_WR_BYTES

    @property
    def total_bytes(self) -> Optional[int]:
        if self.n_user is None or self.partition_size is None:
            return None
        return self.n_user * self.partition_size


def rewrite_plans(plan: Plan,
                  fn: Callable[[Plan], Plan]) -> Plan:
    """Apply ``fn`` to every (sub)plan bottom-up, children first."""
    ops = []
    for op in plan.ops:
        if isinstance(op, Edge):
            ops.append(replace(op, body=rewrite_plans(op.body, fn)))
        elif isinstance(op, Fallback):
            ops.append(replace(op, rungs=tuple(
                rewrite_plans(rung, fn) for rung in op.rungs)))
        else:
            ops.append(op)
    return fn(Plan(tuple(ops)))


class RewritePass(abc.ABC):
    """One plan → plan transformation."""

    #: Stable name used in pipeline traces.
    name: str = ""

    @abc.abstractmethod
    def run(self, plan: Plan, ctx: PassContext) -> Plan:
        """Return the rewritten plan (may be ``plan`` unchanged)."""


@dataclass
class PassPipeline:
    """Sequence passes; keep a digest trace of what each one did."""

    passes: tuple[RewritePass, ...]
    #: ``(pass name, digest before, digest after)`` per executed pass.
    trace: list[tuple[str, str, str]] = field(default_factory=list)

    def run(self, plan: Plan, ctx: PassContext) -> Plan:
        self.trace = []
        for p in self.passes:
            before = plan.digest
            plan = p.run(plan, ctx)
            self.trace.append((p.name, before, plan.digest))
        return plan

    def describe(self) -> str:
        return " -> ".join(p.name for p in self.passes)


# ------------------------------------------------------------------ passes


class Legalize(RewritePass):
    """Clamp knobs to NIC/fabric limits; identity on legal plans.

    * ``partition.n`` is rounded down to a power of two (the
      transport engine's group math requires it; the runtime clamp
      against ``n_user`` stays in ``FixedAggregation.plan`` so that
      lowering a legal plan is bit-identical to constructing the
      aggregator directly);
    * ``qp_pool.n`` is capped by the partition count (one WR chain
      per transport partition — more QPs than partitions can never
      be selected) and by ``NICConfig.max_qps``;
    * ``stripe.rails`` is capped by ``NICConfig.n_ports``.
    """

    name = "legalize"

    def run(self, plan, ctx):
        return rewrite_plans(plan, lambda p: self._one(p, ctx))

    def _one(self, plan: Plan, ctx: PassContext) -> Plan:
        n_partition = None
        part = plan.first(Partition)
        if part is not None:
            n_partition = 1 << (part.n.bit_length() - 1)
        ops = []
        for op in plan.ops:
            if isinstance(op, Partition) and op.n != n_partition:
                op = replace(op, n=n_partition)
            elif isinstance(op, QPPool):
                cap = op.n
                if n_partition is not None:
                    cap = min(cap, n_partition)
                if ctx.config is not None:
                    cap = min(cap, ctx.config.nic.max_qps)
                if cap != op.n:
                    op = replace(op, n=max(1, cap))
            elif isinstance(op, Stripe) and ctx.config is not None:
                rails = min(op.rails, ctx.config.nic.n_ports)
                if rails != op.rails:
                    op = replace(op, rails=rails)
            ops.append(op)
        return Plan(tuple(ops))


class MaterializeSends(RewritePass):
    """Expand ``partition(n)`` into its n contiguous ``send`` WRs.

    Needs ``ctx.total_bytes``; a no-op when the workload size is
    unknown or the plan already carries sends.  The transport chunk
    for ``partition(n)`` over B bytes is ``B // n`` with the
    remainder folded into the last send (mirroring the engine's
    partition math), so total bytes are preserved exactly.
    """

    name = "materialize-sends"

    def run(self, plan, ctx):
        if ctx.total_bytes is None:
            return plan
        return rewrite_plans(plan, lambda p: self._one(p, ctx))

    def _one(self, plan: Plan, ctx: PassContext) -> Plan:
        part = plan.first(Partition)
        total = ctx.total_bytes
        if part is None or total <= 0 or plan.first(Send) is not None:
            return plan
        n = min(part.n, total)
        chunk = total // n
        sends = []
        offset = 0
        for i in range(n):
            nbytes = total - offset if i == n - 1 else chunk
            sends.append(Send(offset=offset, nbytes=nbytes))
            offset += nbytes
        return Plan(plan.ops + tuple(sends))


class SplitOversizedWRs(RewritePass):
    """Split sends larger than the per-WR cap into legal chunks."""

    name = "split-oversized-wrs"

    def run(self, plan, ctx):
        return rewrite_plans(plan, lambda p: self._one(p, ctx))

    def _one(self, plan: Plan, ctx: PassContext) -> Plan:
        cap = ctx.max_wr_bytes
        ops = []
        for op in plan.ops:
            if isinstance(op, Send) and op.nbytes > cap:
                offset, left = op.offset, op.nbytes
                while left > 0:
                    nbytes = min(left, cap)
                    ops.append(Send(offset=offset, nbytes=nbytes))
                    offset += nbytes
                    left -= nbytes
            else:
                ops.append(op)
        return Plan(tuple(ops))


class FuseAdjacentSends(RewritePass):
    """Merge contiguous sends while they fit under the per-WR cap.

    This is the IR form of δ-aggregation's coalescing: two WRs whose
    byte ranges touch become one.  Non-adjacent sends (holes) are
    left alone — that is exactly the case the δ-timer path exists
    for at runtime.
    """

    name = "fuse-adjacent-sends"

    def run(self, plan, ctx):
        return rewrite_plans(plan, lambda p: self._one(p, ctx))

    def _one(self, plan: Plan, ctx: PassContext) -> Plan:
        cap = ctx.max_wr_bytes
        ops: list[PlanOp] = []
        for op in plan.ops:
            prev = ops[-1] if ops else None
            if (isinstance(op, Send) and isinstance(prev, Send)
                    and prev.offset + prev.nbytes == op.offset
                    and prev.nbytes + op.nbytes <= cap):
                ops[-1] = Send(offset=prev.offset,
                               nbytes=prev.nbytes + op.nbytes)
            else:
                ops.append(op)
        return Plan(tuple(ops))


class HoistCommonSubtrees(RewritePass):
    """Deduplicate structurally identical subplans across edges.

    Two rewrites, both semantics-preserving under
    :func:`repro.plan.lower.lower_edges`:

    * when **every** edge carries the same body and the plan has no
      default body, the edges collapse into that body as the default
      (any neighbor resolves to it, so the per-edge listing was pure
      repetition);
    * otherwise, equal-digest edge bodies are interned to one shared
      ``Plan`` object, so lowering memoizes them into one shared
      ``ModuleSpec`` instead of one per edge.
    """

    name = "hoist-common-subtrees"

    def run(self, plan, ctx):
        return rewrite_plans(plan, self._one)

    def _one(self, plan: Plan) -> Plan:
        edges = plan.find(Edge)
        if len(edges) < 2:
            return plan
        digests = {e.body.digest for e in edges}
        if len(digests) == 1 and plan.default_body() is None:
            return edges[0].body
        interned: dict[str, Plan] = {}
        ops = []
        for op in plan.ops:
            if isinstance(op, Edge):
                body = interned.setdefault(op.body.digest, op.body)
                if body is not op.body:
                    op = replace(op, body=body)
            ops.append(op)
        return Plan(tuple(ops))


def lowering_pipeline() -> PassPipeline:
    """The hot-path pipeline run by ``lower()``: legalize only."""
    return PassPipeline((Legalize(),))


def analysis_pipeline() -> PassPipeline:
    """The WR-level view: materialize, split, fuse, hoist, legalize."""
    return PassPipeline((
        MaterializeSends(),
        SplitOversizedWRs(),
        FuseAdjacentSends(),
        HoistCommonSubtrees(),
        Legalize(),
    ))


__all__ = [
    "MAX_WR_BYTES",
    "PassContext",
    "PassPipeline",
    "RewritePass",
    "rewrite_plans",
    "Legalize",
    "MaterializeSends",
    "SplitOversizedWRs",
    "FuseAdjacentSends",
    "HoistCommonSubtrees",
    "lowering_pipeline",
    "analysis_pipeline",
]
