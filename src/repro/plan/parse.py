"""Parser for the canonical plan text.

``parse(text)`` accepts anything :func:`repro.plan.printer.print_plan`
emits (plus insignificant whitespace variations) and rebuilds the
:class:`~repro.plan.ir.Plan`.  Grammar::

    plan    := "plan" "{" op* "}"
    op      := NAME attrs? block?
    attrs   := "(" [ kv ("," kv)* ] ")"
    kv      := NAME "=" value
    value   := INT | FLOAT | "none" | "true" | "false" | NAME
    block   := "{" (op* | rung+) "}"
    rung    := "rung" "{" op* "}"

Op names resolve through :data:`repro.plan.ir.OPS`; unknown ops,
unknown attributes and malformed values raise
:class:`~repro.plan.ir.PlanError` with line/column context.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields
from typing import Optional

from repro.plan.ir import OPS, Fallback, Plan, PlanError, PlanOp

_TOKEN = re.compile(r"""
    (?P<ws>\s+)
  | (?P<float>[-+]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)
           |[-+]?(?:\d+\.\d*|\.\d+))
  | (?P<int>[-+]?\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<punct>[(){}=,])
""", re.VERBOSE)


@dataclass(frozen=True)
class _Token:
    kind: str  # "float" | "int" | "name" | "punct" | "eof"
    text: str
    line: int
    col: int


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    line, col, pos = 1, 1, 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None:
            raise PlanError(
                f"plan parse error at line {line}, col {col}: "
                f"unexpected character {text[pos]!r}")
        kind = m.lastgroup
        chunk = m.group()
        if kind != "ws":
            tokens.append(_Token(kind, chunk, line, col))
        newlines = chunk.count("\n")
        if newlines:
            line += newlines
            col = len(chunk) - chunk.rfind("\n")
        else:
            col += len(chunk)
        pos = m.end()
    tokens.append(_Token("eof", "", line, col))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token plumbing ------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def next(self) -> _Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, text: str) -> _Token:
        tok = self.next()
        if tok.text != text:
            self.fail(tok, f"expected {text!r}")
        return tok

    def fail(self, tok: _Token, message: str):
        shown = tok.text or "end of input"
        raise PlanError(
            f"plan parse error at line {tok.line}, col {tok.col}: "
            f"{message}, got {shown!r}")

    # -- grammar -------------------------------------------------------

    def parse(self) -> Plan:
        self.expect("plan")
        plan = self.block()
        tok = self.peek()
        if tok.kind != "eof":
            self.fail(tok, "expected end of input")
        return plan

    def block(self) -> Plan:
        self.expect("{")
        ops = []
        while self.peek().text != "}":
            ops.append(self.op())
        self.expect("}")
        return Plan(tuple(ops))

    def op(self) -> PlanOp:
        tok = self.next()
        if tok.kind != "name":
            self.fail(tok, "expected an op name")
        cls = OPS.get(tok.text)
        if cls is None:
            self.fail(tok, f"unknown plan op {tok.text!r}")
        kwargs = self.attrs() if self.peek().text == "(" else {}
        if self.peek().text == "{":
            kwargs.update(self.region_body(cls, tok))
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise PlanError(
                f"plan parse error at line {tok.line}, col {tok.col}: "
                f"bad attributes for {tok.text!r}: {exc}") from None

    def attrs(self) -> dict[str, object]:
        self.expect("(")
        kwargs: dict[str, object] = {}
        while self.peek().text != ")":
            if kwargs:
                self.expect(",")
            key = self.next()
            if key.kind != "name":
                self.fail(key, "expected an attribute name")
            self.expect("=")
            kwargs[key.text] = self.value()
        self.expect(")")
        return kwargs

    def value(self) -> object:
        tok = self.next()
        if tok.kind == "int":
            return int(tok.text)
        if tok.kind == "float":
            return float(tok.text)
        if tok.kind == "name":
            if tok.text == "none":
                return None
            if tok.text == "true":
                return True
            if tok.text == "false":
                return False
            return tok.text
        self.fail(tok, "expected a value")

    def region_body(self, cls: type[PlanOp],
                    at: _Token) -> dict[str, object]:
        if issubclass(cls, Fallback):
            self.expect("{")
            rungs = []
            while self.peek().text != "}":
                self.expect("rung")
                rungs.append(self.block())
            self.expect("}")
            return {"rungs": tuple(rungs)}
        field = _plan_field(cls)
        if field is None:
            self.fail(at, f"op {cls.name!r} takes no body")
        return {field: self.block()}


def _plan_field(cls: type[PlanOp]) -> Optional[str]:
    for f in fields(cls):
        if f.type in ("Plan", "\"Plan\"", "'Plan'"):
            return f.name
    return None


def parse(text: str) -> Plan:
    """Parse canonical plan text back into a :class:`Plan`."""
    return _Parser(text).parse()
