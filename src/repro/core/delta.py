"""Minimum-δ estimation from profiled arrival patterns (Section V-C3).

"For each message size and partition count, we obtained the average
arrival time for each partition that was not the laggard thread.  Then
we obtained our minimum δ by calculating the difference between the
first and last (non-laggard) thread to arrive."
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigError


def estimate_min_delta(rounds: Sequence[Sequence[float]],
                       laggards_per_round: int = 1) -> float:
    """Minimum δ covering the non-laggard arrival spread.

    Per round, the ``laggards_per_round`` latest arrivals are dropped
    (the single-thread-delay model delays exactly one, and the victim
    may rotate between rounds) and the spread between the first and
    last remaining arrival is taken; rounds are then averaged — the
    paper's recipe of excluding the laggard before aggregating
    (Section V-C3).

    Parameters
    ----------
    rounds:
        Per-round lists of per-partition ``MPI_Pready`` times.
    laggards_per_round:
        How many of the latest arrivals to exclude each round.
    """
    if not rounds:
        raise ConfigError("need at least one round of arrival data")
    n = len(rounds[0])
    if any(len(r) != n for r in rounds):
        raise ConfigError("rounds have inconsistent partition counts")
    if not (0 <= laggards_per_round < n):
        raise ConfigError(
            f"cannot exclude {laggards_per_round} of {n} arrivals")
    spreads = min_delta_per_round(rounds, laggards_per_round)
    return float(np.mean(spreads))


def min_delta_per_round(rounds: Sequence[Sequence[float]],
                        laggards_per_round: int = 1) -> list[float]:
    """Per-round non-laggard spread (diagnostic variant)."""
    out = []
    for r in rounds:
        srt = np.sort(np.asarray(r, dtype=float))
        if laggards_per_round:
            srt = srt[:-laggards_per_round]
        out.append(float(srt[-1] - srt[0]) if len(srt) > 1 else 0.0)
    return out


def min_delta_table(profiles: dict[tuple[int, int], Sequence[Sequence[float]]],
                    laggards_per_round: int = 1) -> dict[tuple[int, int], float]:
    """Fig. 12's table: {(message size, n partitions): minimum δ}.

    ``profiles`` maps (message_size, n_partitions) to rounds of arrival
    data (as collected by :mod:`repro.profiler`).
    """
    return {
        key: estimate_min_delta(rounds, laggards_per_round)
        for key, rounds in profiles.items()
    }
