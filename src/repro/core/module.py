"""The native-verbs partitioned module (paper Section IV).

Maps a matched Psend/Precv pair directly onto InfiniBand resources:

* per-pair PDs, CQs, and ``n_qps`` connected QPs;
* send/receive buffers registered once at init;
* ``MPI_Pready`` performs an atomic add-and-fetch on the transport
  group's arrival counter; the thread that completes a group posts the
  group's ``RDMA_WRITE_WITH_IMM`` WR, with (start, count) packed in the
  immediate;
* receive WRs are pre-posted in ``MPI_Start``;
* the δ-timer path (Section IV-D), when armed, lets the first arriver
  of a group sleep up to δ and flush the arrived runs early.

WRs for a group always use the same QP: rail ``group % n_rails`` (one
rail per NIC port), QP ``group % n_qps`` within it — striped scheduling
through :class:`repro.engine.Rail`.  Software flow control parks a
poster when a QP's 16-outstanding-RDMA budget is exhausted.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.aggregators import AggregationPlan, Aggregator
from repro.core.immediate import decode_immediate, encode_immediate
from repro.engine import (
    CreditManager,
    ReplayTracker,
    build_rails,
    reconnect_walk,
    restock,
)
from repro.errors import PartitionError
from repro.ib.constants import (
    ACCESS_LOCAL,
    ACCESS_REMOTE_WRITE,
    Opcode,
    QPState,
    WCStatus,
)
from repro.ib.wr import SGE, SendWR
from repro.mpi.modules import ModuleSpec, PartitionedModule
from repro.sim.sync import AtomicCounter

if TYPE_CHECKING:
    from repro.mpi.process import MPIProcess

_wrid = itertools.count(1 << 32)  # distinct from the endpoint namespace


class NativeVerbsModule(PartitionedModule):
    """One matched pair's verbs transport with aggregation."""

    def __init__(self, cluster, send_req, recv_req, aggregator: Aggregator):
        super().__init__(cluster, send_req, recv_req)
        self.aggregator = aggregator
        self.sender: "MPIProcess" = send_req.process
        self.receiver: "MPIProcess" = recv_req.process
        self.plan: Optional[AggregationPlan] = None
        self.group_size = 0
        # set up in setup(): one rail per NIC port, plus flat QP lists
        # in creation order for introspection and the recovery walk.
        self.send_rails = []
        self.recv_rails = []
        self.send_qps = []
        self.recv_qps = []
        self.send_cq = None
        self.recv_cq = None
        self.send_mr = None
        self.recv_mr = None
        # per-round sender state
        self._arrived: Optional[np.ndarray] = None
        self._sent: Optional[np.ndarray] = None
        self._flushed: Optional[np.ndarray] = None
        self._counters: list[AtomicCounter] = []
        self._ready_count = 0
        self._posted = 0
        self._acked = 0
        #: Posts currently between sent-marking and the actual
        #: ``post_send`` (inside WR-build cost or flow control); non-zero
        #: keeps the round open while posted/acked are inconsistent.
        self._inflight_posts = 0
        # Round credit: the sender may only put data on the wire for
        # round N once the receiver's MPI_Start for round N has re-armed
        # the buffers — the remote-readiness problem behind the MPI
        # Forum's MPI_Pbuf_prepare proposal (Section IV-A).  The
        # receiver's Start grants a credit that reaches the sender one
        # fabric latency later; posts issued before it are deferred.
        self._credit = CreditManager(self.env, self._flush_deferred)
        # adaptive-delta state
        self.current_delta: Optional[float] = None
        self._round_pready_times: Optional[list] = None
        #: δ used each round (diagnostics for the auto-tuner).
        self.delta_history: list[float] = []
        # Closed-loop tuning (repro.autotune).  The round-active values
        # shadow the plan: without a controller they are set once from
        # the plan in setup() and never change, so every read below is
        # bit-identical to reading the plan directly; with a controller
        # _sync_round() retargets them at the top of each round.
        self._controller = None
        self._active_n_transport = 0
        self._active_n_qps = 1
        self._active_delta: Optional[float] = None
        self._planned_round: Optional[int] = None
        self._round_t0 = 0.0
        self._round_send_done = 0.0
        self._round_recv_done = 0.0
        self._counter_snapshot: dict = {}
        self._wrs_snapshot = 0
        self._flush_snapshot = 0
        # Fault recovery: the tracker maps every in-flight WR to its QP
        # and (runs, sg_seq) payload, so a WR that dies — by error CQE
        # or by vanishing with a killed QP — is replayed exactly once.
        self._tracker = ReplayTracker(
            self.env, cluster.fabric, cluster.config.part.reconnect_delay)
        self._tracker.bind(
            recover_walk=self._recover_walk,
            restock=self._restock_recv,
            on_dropped=self._drop_wr,
            can_replay=self._can_replay,
            replay_unit=self._replay_unit)
        #: Degraded aggregation: post per-partition instead of grouped
        #: runs while the channel is suspect (cleared after a clean round).
        self._degraded = False
        self._fault_in_round = False
        # statistics across rounds
        self.total_wrs_posted = 0
        self.timer_flushes = 0

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def setup(self, send_req, recv_req) -> None:
        config = self.cluster.config
        self.plan = self.aggregator.plan(
            send_req.n_partitions, send_req.partition_size, config)
        if send_req.n_partitions % self.plan.n_transport != 0:
            raise PartitionError(
                f"{self.plan.n_transport} transport partitions do not divide "
                f"{send_req.n_partitions} user partitions")
        self.group_size = send_req.n_partitions // self.plan.n_transport
        self._controller = self.plan.controller
        self._active_n_transport = self.plan.n_transport
        self._active_n_qps = self.plan.n_qps
        self._active_delta = self.plan.timer_delta
        if self._controller is not None:
            # QPs are provisioned for the largest arm; every arm must
            # also produce an aligned grouping of this request.
            choices = list(self._controller.policy.candidates())
            if self._controller.pinned is not None:
                choices.append(self._controller.pinned)
            for choice in choices:
                if (send_req.n_partitions % choice.n_transport != 0
                        or choice.n_qps > self.plan.n_qps):
                    raise PartitionError(
                        f"autotune candidate {choice} does not fit "
                        f"{send_req.n_partitions} user partitions / "
                        f"{self.plan.n_qps} provisioned QPs")
        send_pd = self.sender.ib.alloc_pd()
        recv_pd = self.receiver.ib.alloc_pd()
        self.send_cq = self.sender.ib.create_cq(capacity=1 << 20)
        self.recv_cq = self.receiver.ib.create_cq(capacity=1 << 20)
        self.send_rails, self.recv_rails = build_rails(
            self.sender.ib, self.receiver.ib, send_pd, recv_pd,
            self.send_cq, self.recv_cq, self.plan.n_qps, config.nic.n_ports)
        self.send_qps = [qp for rail in self.send_rails for qp in rail]
        self.recv_qps = [qp for rail in self.recv_rails for qp in rail]
        self.send_mr = send_pd.reg_mr(send_req.buf, ACCESS_LOCAL)
        self.recv_mr = recv_pd.reg_mr(
            recv_req.buf, ACCESS_LOCAL | ACCESS_REMOTE_WRITE)
        if self.plan.scatter_gather:
            # The rejected design of Section IV-D needs receive-side
            # staging: gathered (non-contiguous) flushes land here and
            # are copied out once the layout is known.
            from repro.mem.buffer import Buffer

            self._staging = Buffer(
                2 * recv_req.buf.nbytes,
                backed=self.cluster.config.real_buffers)
            self._staging_mr = recv_pd.reg_mr(
                self._staging, ACCESS_LOCAL | ACCESS_REMOTE_WRITE)
            self._staging_head = 0
            self._sg_layouts: dict[int, tuple] = {}
            self._sg_seq = 0
        self.sender.router.bind(
            self.send_cq, self._on_send_wc, on_idle=self._check_send_complete)
        self.receiver.router.bind(
            self.recv_cq, self._on_recv_wc, on_idle=self._check_recv_complete)

    # -- compat: round-credit state now lives on the CreditManager ------

    @property
    def _armed_round(self) -> int:
        return self._credit.armed_round

    @property
    def _deferred(self) -> list:
        return self._credit.deferred

    # ------------------------------------------------------------------
    # round management
    # ------------------------------------------------------------------

    def _sync_round(self, round_no: int) -> None:
        """Close the loop at a round boundary (controller runs only).

        Idempotent per round — ``start_send`` and ``start_recv`` both
        call it and whichever runs first does the work.  Feeds the
        previous round's observation to the controller, then applies
        its choice for this round to the round-active values.  Pure
        attribute bookkeeping: no yields, no virtual time.
        """
        if round_no == self._planned_round:
            return
        counters = self.cluster.fabric.counters
        if (self._planned_round is not None
                and self._round_pready_times is not None):
            from repro.autotune.observe import IterationObservation

            deltas = counters.since(self._counter_snapshot)
            # An observation that overlapped a recovery window measures
            # the fault, not the arm — quarantine it so the tuner's
            # statistics stay clean (chaos ladder, PR 6).
            tainted = bool(
                deltas.get("ib.retry_exhausted", 0)
                or deltas.get("ib.reconnects", 0)
                or self._tracker.recovering
                or self._fault_in_round)
            if tainted:
                counters.inc("autotune.quarantined")
            self._controller.observe(IterationObservation(
                round=self._planned_round,
                completion_time=max(self._round_send_done,
                                    self._round_recv_done) - self._round_t0,
                pready_times=tuple(self._round_pready_times),
                wrs_posted=self.total_wrs_posted - self._wrs_snapshot,
                timer_flushes=self.timer_flushes - self._flush_snapshot,
                retransmits=deltas.get("ib.retransmits", 0),
                tainted=tainted,
            ))
        # Never flip the layout under pending recovery or replay: the
        # queued units were grouped under the previous round's plan.
        hold = self._tracker.recovering or bool(self._tracker.replay)
        choice = self._controller.plan_for_round(round_no, hold=hold)
        self._active_n_transport = choice.n_transport
        self._active_n_qps = choice.n_qps
        self._active_delta = choice.delta
        self.group_size = self.send_req.n_partitions // choice.n_transport
        self.current_delta = choice.delta
        self._planned_round = round_no
        self._round_t0 = self.env.now
        self._counter_snapshot = counters.snapshot()
        self._wrs_snapshot = self.total_wrs_posted
        self._flush_snapshot = self.timer_flushes

    def start_send(self, req):
        n = req.n_partitions
        host = self.sender.config.host
        if self._controller is not None:
            self._sync_round(req.round)
            if self._active_delta is not None:
                self.delta_history.append(self.current_delta)
        elif self.plan.timer_delta is not None:
            if self.current_delta is None:
                self.current_delta = self.plan.timer_delta
            elif (self.plan.adaptive is not None
                  and self._round_pready_times is not None
                  and n > 2):
                # Feed last round's non-laggard spread into the tuner.
                from repro.core.delta import estimate_min_delta

                spread = estimate_min_delta([self._round_pready_times])
                self.current_delta = self.plan.adaptive.update(
                    self.current_delta, spread)
            self.delta_history.append(self.current_delta)
        self._round_pready_times = [0.0] * n
        self._arrived = np.zeros(n, dtype=bool)
        self._sent = np.zeros(n, dtype=bool)
        self._flushed = np.zeros(self._active_n_transport, dtype=bool)
        atomic_cost = self.sender.software_cost(host.t_atomic)
        self._counters = [
            AtomicCounter(self.env, access_cost=atomic_cost)
            for _ in range(self._active_n_transport)
        ]
        self._ready_count = 0
        self._posted = 0
        self._acked = 0
        # Degradation hysteresis: one clean round restores aggregation.
        if (self._degraded and not self._fault_in_round
                and not self._tracker.recovering):
            self._degraded = False
        self._fault_in_round = False
        return
        yield  # pragma: no cover - generator protocol

    def _restock_recv(self) -> None:
        """Top each QP's RQ up to its worst-case message count.

        Shared by ``MPI_Start`` and channel recovery (a reconnected QP
        comes back with whatever survived the flush re-armed here).
        """
        per_group_max = self.group_size if self._active_delta is not None else 1
        if self.cluster.fabric.faults is not None:
            # A degraded sender may downgrade any group to
            # per-partition sends; stock for that worst case so
            # replays never starve the RQ into an RNR livelock.
            per_group_max = self.group_size
        n_rails = len(self.recv_rails)
        targets = [[0] * self.plan.n_qps for _ in range(n_rails)]
        for g in range(self._active_n_transport):
            targets[g % n_rails][g % self._active_n_qps] += per_group_max
        for rail, rail_targets in zip(self.recv_rails, targets):
            for qp, target in zip(rail, rail_targets):
                restock(qp, target, lambda: next(_wrid))

    def start_recv(self, req):
        """Pre-post this round's receive WRs (Section IV-A).

        Tops each QP's RQ up to its worst-case message count so stale
        entries from timer rounds are reused rather than leaked.
        """
        if self._controller is not None:
            # Restock must match this round's plan, whichever side's
            # Start runs first.
            self._sync_round(req.round)
        self._restock_recv()
        # Grant the sender this round's credit, one fabric latency away.
        flight = self.cluster.fabric.latency(
            self.receiver.node_id, self.sender.node_id)
        self._credit.grant(req.round, flight)
        return
        yield  # pragma: no cover - generator protocol

    # ------------------------------------------------------------------
    # sender path
    # ------------------------------------------------------------------

    def pready(self, req, partition: int):
        """Atomic arrival marking plus group-completion posting."""
        group = partition // self.group_size
        self._arrived[partition] = True
        self._round_pready_times[partition] = self.env.now
        self._ready_count += 1
        count = yield from self._counters[group].add_and_fetch(1)
        if self._active_delta is None:
            if count == self.group_size:
                yield from self._post_range(
                    group * self.group_size, self.group_size)
        else:
            if self._flushed[group]:
                # Post-flush arrivals send themselves (plus any arrived
                # neighbours not yet sent).  The partition may already
                # have been swept up by a flush that ran while this
                # thread was inside the atomic add — never re-send it.
                if not self._sent[partition]:
                    yield from self._post_run_around(partition, group)
            elif count == self.group_size:
                # Last arriver: send whatever remains (the whole group
                # if the timer never fired).
                yield from self._post_unsent_runs(group)
            elif count == 1:
                # First arriver sleeps up to delta, checking the flag.
                yield from self._timer_wait(group)

    def _timer_wait(self, group: int):
        cfg = self.cluster.config.part
        delta = (self.current_delta if self.current_delta is not None
                 else self._active_delta)
        waited = 0.0
        while waited < delta:
            step = min(cfg.timer_poll, delta - waited)
            yield step
            waited += step
            if self._counters[group].value >= self.group_size:
                return  # last arriver handled the group
        if self._counters[group].value >= self.group_size:
            return
        self._flushed[group] = True
        self.timer_flushes += 1
        yield from self._post_unsent_runs(group)

    def _collect_unsent_runs(self, group: int) -> list[tuple[int, int]]:
        """Maximal contiguous (start, count) runs of arrived-but-unsent."""
        base = group * self.group_size
        runs = []
        i = base
        end = base + self.group_size
        while i < end:
            if self._arrived[i] and not self._sent[i]:
                j = i
                while j < end and self._arrived[j] and not self._sent[j]:
                    j += 1
                runs.append((i, j - i))
                i = j
            else:
                i += 1
        return runs

    def _post_unsent_runs(self, group: int):
        """Post arrived-but-unsent partitions: one WR per contiguous run
        (the paper's design), or one multi-SGE WR into receive-side
        staging (the rejected scatter/gather alternative).

        Posting yields (WR build cost, flow control), and new arrivals
        may send themselves in those gaps — so the run list is
        re-collected after every post instead of trusted across yields.
        The SG path is immune: it marks every collected partition sent
        before its first yield.
        """
        runs = self._collect_unsent_runs(group)
        if self.plan.scatter_gather and len(runs) > 1:
            yield from self._post_scatter_gather(group, runs)
            return
        while runs:
            start, count = runs[0]
            yield from self._post_range(start, count)
            runs = self._collect_unsent_runs(group)

    def _post_run_around(self, partition: int, group: int):
        base = group * self.group_size
        end = base + self.group_size
        lo = partition
        while lo > base and self._arrived[lo - 1] and not self._sent[lo - 1]:
            lo -= 1
        hi = partition + 1
        while hi < end and self._arrived[hi] and not self._sent[hi]:
            hi += 1
        yield from self._post_range(lo, hi - lo)

    def _post_range(self, start: int, count: int):
        """One RDMA-write-with-immediate for user partitions [start, +count).

        Deferred (without posting) when the receiver's round credit has
        not arrived yet; the credit flushes the backlog.  While the
        channel is degraded by a fault, aggregation downgrades to
        per-partition WRs so a retransmitted unit of loss is one
        partition, not a whole transport group.
        """
        self._sent[start : start + count] = True
        if not self._credit.ready(self.send_req.round):
            self._credit.defer((start, count))
            return
        if (self._degraded and count > 1
                and self.cluster.config.part.degrade_on_fault):
            self.cluster.fabric.counters.inc("mpi.degraded_posts", count)
            for p in range(start, start + count):
                yield from self._issue_wr(p, 1)
            return
        yield from self._issue_wr(start, count)

    def _flush_deferred(self):
        """Post everything queued behind the round credit; yields.

        Entries are popped only *after* their WR is on the queue: the
        completion condition treats a non-empty deferred list as
        work-outstanding, and popping first would open a window (inside
        ``_issue_wr``'s post cost) where ``acked == posted`` with
        nothing deferred reads as round-complete — letting the round
        re-arm under an in-flight flush and corrupting the counters.
        """
        deferred = self._credit.deferred
        while deferred:
            start, count = deferred[0]
            yield from self._issue_wr(start, count)
            deferred.pop(0)

    def _issue_wr(self, start: int, count: int):
        """Build and post one WR; guarded against premature completion.

        Between sent-flag marking and the ``post_send`` there are yields
        (WR-build cost, flow control) during which posted/acked look
        consistent to the send poller even though work is pending —
        ``_inflight_posts`` keeps the round open across that window.
        """
        req = self.send_req
        self._inflight_posts += 1
        try:
            yield self.sender.software_cost(self.sender.config.host.t_post)
            group = start // self.group_size
            rail = self.send_rails[group % len(self.send_rails)]
            qp = yield from rail.acquire(group % self._active_n_qps)
            if qp.state is not QPState.RTS:
                # The channel died under us (wait_rdma_slot fires
                # immediately on an ERROR QP).  Park the range: channel
                # recovery replays it after the reconnect walk.
                if not self._recovery_enabled:
                    from repro.errors import ChannelDownError

                    raise ChannelDownError(
                        "send QP is down and reconnect is disabled",
                        **self._failure_context(
                            partitions=[(start, count)], qp_num=qp.qp_num,
                            status=qp.state.value))
                self._tracker.queue([(start, count)])
                self._note_fault()
                return
            offset, length = req.buf.range_offset(start, count)
            wr_id = next(_wrid)
            qp.post_send(SendWR(
                wr_id=wr_id,
                opcode=Opcode.RDMA_WRITE_WITH_IMM,
                sg_list=[SGE(self.send_mr.addr + offset, length,
                             self.send_mr.lkey)],
                remote_addr=self.recv_mr.addr + offset,
                rkey=self.recv_mr.rkey,
                imm_data=encode_immediate(start, count),
            ))
            self._tracker.track(wr_id, qp, (((start, count),), None))
            self._posted += 1
            self.total_wrs_posted += 1
        finally:
            self._inflight_posts -= 1

    #: Immediate "start" value marking a scatter/gather staging message.
    _SG_MARKER = 0xFFFF

    def _post_scatter_gather(self, group: int, runs: list[tuple[int, int]]):
        """One multi-SGE WR into staging for non-contiguous runs."""
        req = self.send_req
        psize = req.partition_size
        for start, count in runs:
            self._sent[start : start + count] = True
        if not self._credit.ready(self.send_req.round):
            # Credit not here yet: queue as plain runs (the grouping
            # opportunity has passed by the time the credit lands).
            self._credit.defer_all(runs)
            return
        host = self.sender.config.host
        self._inflight_posts += 1
        try:
            # WR build cost grows with the gather-list length.
            yield self.sender.software_cost(
                host.t_post + 50e-9 * len(runs))
            rail = self.send_rails[group % len(self.send_rails)]
            qp = yield from rail.acquire(group % self._active_n_qps)
            if qp.state is not QPState.RTS:
                if not self._recovery_enabled:
                    from repro.errors import ChannelDownError

                    raise ChannelDownError(
                        "send QP is down and reconnect is disabled",
                        **self._failure_context(
                            partitions=runs, qp_num=qp.qp_num,
                            status=qp.state.value))
                self._tracker.queue(runs)
                self._note_fault()
                return
            total = sum(count for _, count in runs) * psize
            if self._staging_head + total > self._staging.nbytes:
                self._staging_head = 0
            staging_offset = self._staging_head
            self._staging_head += total
            seq = self._sg_seq = (self._sg_seq + 1) & 0xFFFF or 1
            self._sg_layouts[seq] = (tuple(runs), staging_offset)
            sg_list = []
            for start, count in runs:
                offset, length = req.buf.range_offset(start, count)
                sg_list.append(SGE(self.send_mr.addr + offset, length,
                                   self.send_mr.lkey))
            wr_id = next(_wrid)
            qp.post_send(SendWR(
                wr_id=wr_id,
                opcode=Opcode.RDMA_WRITE_WITH_IMM,
                sg_list=sg_list,
                remote_addr=self._staging_mr.addr + staging_offset,
                rkey=self._staging_mr.rkey,
                imm_data=(self._SG_MARKER << 16) | seq,
            ))
            self._tracker.track(wr_id, qp, (tuple(runs), seq))
            self._posted += 1
            self.total_wrs_posted += 1
        finally:
            self._inflight_posts -= 1

    def _handle_scatter_gather(self, imm: int):
        """Receiver side: parse layout, copy staging into place; yields."""
        seq = imm & 0xFFFF
        runs, staging_offset = self._sg_layouts.pop(seq)
        req = self.recv_req
        psize = req.partition_size
        host = self.receiver.config.host
        part_cfg = self.receiver.config.part
        total = sum(count for _, count in runs) * psize
        # Layout handling per run, plus the staging copy-out — the
        # receive-side costs that made the paper reject this design.
        yield part_cfg.t_rx_wr * len(runs) + total / host.memcpy_rate
        cursor = staging_offset
        for start, count in runs:
            offset, length = req.buf.range_offset(start, count)
            req.buf.write(offset, self._staging.read(cursor, length))
            cursor += length
            req.mark_arrived(start, count)

    # ------------------------------------------------------------------
    # fault recovery
    # ------------------------------------------------------------------

    @property
    def _recovery_enabled(self) -> bool:
        return self._tracker.recovery_enabled

    def _note_fault(self) -> None:
        """Record a channel fault and kick the recovery process once."""
        self._fault_in_round = True
        if self.cluster.config.part.degrade_on_fault:
            self._degraded = True
        if self.ladder is not None:
            self.ladder.note_failure("retry_exhausted", module=self)
        self._tracker.kick()

    def _failure_context(self, partitions=None, **extra) -> dict:
        """Structured context for transport errors raised off this pair."""
        nic = self.cluster.config.nic
        ctx = dict(
            edge=(self.sender.rank, self.receiver.rank),
            epoch=self.send_req.round,
            retries={"retry_cnt": nic.retry_cnt, "rnr_retry": nic.rnr_retry},
        )
        if partitions is not None:
            ctx["partitions"] = tuple(partitions)
        ctx.update(extra)
        return ctx

    def _handle_send_failure(self, wc):
        """A send WR died (retry exhaustion or flush): stash for replay.

        The failed WR's ranges move from the in-flight map to the replay
        list exactly once — ``_posted`` drops with them so the round's
        acked==posted invariant is restored by the replay posts.
        """
        entry = self._tracker.fail(wc.wr_id)
        runs = None
        if entry is not None:
            _, payload = entry
            runs = self._drop_wr(payload)
            self._tracker.queue(runs)
        if not self._recovery_enabled:
            from repro.errors import RetryExhaustedError

            raise RetryExhaustedError(
                "send WR failed and reconnect is disabled",
                **self._failure_context(
                    partitions=runs, wr_id=wc.wr_id, qp_num=wc.qp_num,
                    status=wc.status.value))
        self._note_fault()
        return
        yield  # pragma: no cover - generator protocol

    def _drop_wr(self, payload) -> tuple:
        """Undo a dead WR's accounting; returns its replayable runs."""
        runs, sg_seq = payload
        if sg_seq is not None:
            self._sg_layouts.pop(sg_seq, None)
        self._posted -= 1
        return runs

    def _recover_walk(self) -> set:
        """Walk failed QP pairs back to RTS; tokens are the send QPs."""
        pairs = ((qp_s, qp_s, qp_r)
                 for qp_s, qp_r in zip(self.send_qps, self.recv_qps))
        return reconnect_walk(pairs)

    def _can_replay(self, unit) -> bool:
        start, _ = unit
        group = start // self.group_size
        rail = self.send_rails[group % len(self.send_rails)]
        return rail.peek(group % self._active_n_qps).state is QPState.RTS

    def _replay_unit(self, unit):
        start, count = unit
        yield from self._issue_wr(start, count)

    # ------------------------------------------------------------------
    # completion handling (dispatched by the CompletionRouter)
    # ------------------------------------------------------------------

    def _on_send_wc(self, wc):
        if not wc.ok:
            yield from self._handle_send_failure(wc)
            return
        self._acked += 1
        self._tracker.complete(wc.wr_id)

    def _check_send_complete(self) -> None:
        if self._retired_for(self.send_req):
            return
        if (not self.send_req.done
                and self._arrived is not None
                and self._ready_count == self.send_req.n_partitions
                and not self._credit.deferred
                and self._inflight_posts == 0
                and not self._tracker.replay
                and not self._tracker.recovering
                and self._acked == self._posted
                and (self.ladder is None
                     or not self.ladder.blocks_completion)
                and bool(self._sent.all())):
            self._round_send_done = self.env.now
            self.send_req.mark_complete()

    def _on_recv_wc(self, wc):
        part_cfg = self.receiver.config.part
        req = self.recv_req
        if not wc.ok:
            # Flushed receives from a channel failure: recovery
            # re-posts them, nothing arrived, nothing to mark.
            if (wc.status is WCStatus.WR_FLUSH_ERR
                    and self._recovery_enabled):
                self.cluster.fabric.counters.inc("mpi.flushed_recv_wcs")
                return
            wc.require_success()
        if (wc.imm_data >> 16) == self._SG_MARKER:
            yield from self._handle_scatter_gather(wc.imm_data)
        else:
            yield part_cfg.t_rx_wr
            start, count = decode_immediate(wc.imm_data)
            if bool(req.arrived[start : start + count].all()):
                # Exactly-once safety net: a replayed WR whose
                # original did land is dropped here.
                self.cluster.fabric.counters.inc("mpi.duplicates_dropped")
            else:
                req.mark_arrived(start, count)

    def _check_recv_complete(self) -> None:
        req = self.recv_req
        if self._retired_for(req):
            return
        if not req.done and req.all_arrived:
            self._round_recv_done = self.env.now
            req.mark_complete()


class NativeSpec(ModuleSpec):
    """Spec for the native module; pass the same aggregator both sides."""

    name = "native_verbs"

    def __init__(self, aggregator: Aggregator):
        self.aggregator = aggregator

    def create(self, cluster, send_req, recv_req):
        return NativeVerbsModule(cluster, send_req, recv_req, self.aggregator)
