"""The paper's contribution: MPI Partitioned directly over verbs.

:mod:`repro.core.module` implements the native MCA-style module of
Section IV-A (flag arrays, atomic arrival counting, RDMA-write-with-
immediate transport partitions, multi-QP spreading).  The three
aggregation strategies of Sections IV-B/C/D live in
:mod:`repro.core.aggregators` and :mod:`repro.core.tuning_table`.
"""

from repro.core.immediate import encode_immediate, decode_immediate
from repro.core.aggregators import (
    AdaptiveDelta,
    AdaptiveTimerAggregator,
    AggregationPlan,
    Aggregator,
    FixedAggregation,
    NoAggregation,
    PLogGPAggregator,
    TimerPLogGPAggregator,
)
from repro.core.module import NativeVerbsModule, NativeSpec
from repro.core.tuning_table import TuningTableAggregator, TuningTable
from repro.core.delta import estimate_min_delta, min_delta_table

__all__ = [
    "encode_immediate",
    "decode_immediate",
    "AdaptiveDelta",
    "AdaptiveTimerAggregator",
    "AggregationPlan",
    "Aggregator",
    "FixedAggregation",
    "NoAggregation",
    "PLogGPAggregator",
    "TimerPLogGPAggregator",
    "NativeVerbsModule",
    "NativeSpec",
    "TuningTableAggregator",
    "TuningTable",
    "estimate_min_delta",
    "min_delta_table",
]
