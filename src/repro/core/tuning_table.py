"""The brute-force tuning table (paper Section IV-B).

The paper exhaustively searched (transport partitions, QPs) per
(user partitions, message size) for one process pair — "just under 23
hours on two nodes" — and stored the winners in a hash table keyed by
*(number of user partitions, message size)*.  Here the same search runs
against the simulator (:func:`build_tuning_table`), in virtual time, and
the resulting :class:`TuningTable` plugs into the native module through
:class:`TuningTableAggregator`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional

from repro.core.aggregators import AggregationPlan, Aggregator, _qps_for
from repro.errors import TuningError
from repro.units import is_power_of_two, powers_of_two


@dataclass
class TuningTable:
    """(n_user, message_size) -> (n_transport, n_qps).

    Message-size lookup floors to the nearest recorded size, as tuning
    tables in production MPI libraries do.
    """

    entries: dict[tuple[int, int], tuple[int, int]] = field(default_factory=dict)
    #: Per-``n_user`` sorted size lists, built lazily by :meth:`lookup`
    #: and invalidated by :meth:`add` (mutate through ``add`` only).
    _sorted_sizes: dict[int, list[int]] = field(
        default_factory=dict, init=False, repr=False, compare=False)

    def add(self, n_user: int, message_size: int,
            n_transport: int, n_qps: int) -> None:
        if not is_power_of_two(n_user) or not is_power_of_two(n_transport):
            raise TuningError("partition counts must be powers of two")
        if message_size <= 0 or n_qps < 1:
            raise TuningError("invalid table entry")
        if n_transport > n_user:
            raise TuningError(
                f"n_transport {n_transport} exceeds n_user {n_user}")
        self.entries[(n_user, message_size)] = (n_transport, n_qps)
        self._sorted_sizes.pop(n_user, None)

    def _sizes_for(self, n_user: int) -> list[int]:
        sizes = self._sorted_sizes.get(n_user)
        if sizes is None:
            sizes = sorted(s for (u, s) in self.entries if u == n_user)
            self._sorted_sizes[n_user] = sizes
        return sizes

    def lookup(self, n_user: int, message_size: int) -> tuple[int, int]:
        sizes = self._sizes_for(n_user)
        if not sizes:
            raise TuningError(f"no tuning entries for {n_user} user partitions")
        idx = bisect.bisect_right(sizes, message_size) - 1
        if idx < 0:
            idx = 0
        return self.entries[(n_user, sizes[idx])]

    def __len__(self) -> int:
        return len(self.entries)


class TuningTableAggregator(Aggregator):
    """Aggregation driven by a brute-force-derived table (Section IV-B)."""

    def __init__(self, table: TuningTable):
        if len(table) == 0:
            raise TuningError("empty tuning table")
        self.table = table

    def plan(self, n_user, partition_size, config):
        n_transport, n_qps = self.table.lookup(
            n_user, n_user * partition_size)
        n_transport = min(n_transport, n_user)
        return AggregationPlan(n_transport=n_transport, n_qps=n_qps)

    def describe(self):
        return f"tuning-table({len(self.table)} entries)"


def build_tuning_table(
    n_user_counts: list[int],
    message_sizes: list[int],
    qp_candidates: Optional[list[int]] = None,
    config=None,
    iterations: int = 5,
    warmup: int = 1,
) -> TuningTable:
    """Brute-force search on the simulated fabric.

    For each (user partitions, total message size) point, runs the
    overhead benchmark across every power-of-two transport count and
    each QP candidate, and records the fastest combination.  The
    simulator's 23-hour equivalent — but in virtual time.
    """
    from repro.bench.overhead import run_overhead  # circular-import guard
    from repro.config import NIAGARA
    from repro.core.aggregators import FixedAggregation

    if config is None:
        config = NIAGARA
    table = TuningTable()
    for n_user in n_user_counts:
        if not is_power_of_two(n_user):
            raise TuningError(f"n_user {n_user} is not a power of two")
        for size in message_sizes:
            if size < n_user:
                continue
            best = None
            for n_transport in powers_of_two(1, n_user):
                candidates = qp_candidates or sorted(
                    {1, _qps_for(n_transport, n_transport, config)})
                for n_qps in candidates:
                    result = run_overhead(
                        FixedAggregation(n_transport, n_qps),
                        n_user=n_user,
                        total_bytes=size,
                        iterations=iterations,
                        warmup=warmup,
                        config=config,
                    )
                    key = (result.mean_time, n_transport, n_qps)
                    if best is None or key < best:
                        best = key
            _, n_transport, n_qps = best
            table.add(n_user, size, n_transport, n_qps)
    return table
