"""Immediate-data encoding for transport partitions (Section IV-A).

"The immediate value must be of type ``__be32``.  So to encode the
required information we store the starting user partition and the
number of contiguous partitions as two variables of type ``uint16_t``."
"""

from __future__ import annotations

from repro.errors import PartitionError

_U16_MAX = 0xFFFF


def encode_immediate(start: int, count: int) -> int:
    """Pack (start user partition, contiguous count) into 32 bits."""
    if not (0 <= start <= _U16_MAX):
        raise PartitionError(f"start partition {start} does not fit uint16")
    if not (1 <= count <= _U16_MAX):
        raise PartitionError(f"partition count {count} does not fit uint16")
    return (start << 16) | count


def decode_immediate(imm: int) -> tuple[int, int]:
    """Unpack an immediate into (start, count)."""
    if not (0 <= imm < 2**32):
        raise PartitionError(f"immediate {imm:#x} is not a __be32")
    start = (imm >> 16) & _U16_MAX
    count = imm & _U16_MAX
    if count == 0:
        raise PartitionError(f"immediate {imm:#x} decodes to zero count")
    return start, count
