"""Aggregation strategies: how user partitions map to transport partitions.

An :class:`Aggregator` decides, at ``Psend_init``/``Precv_init`` time,
how many transport partitions and QPs the native module uses for a
request (and whether the δ-timer path is armed).  Constraints from
Section IV-C apply to every strategy: power-of-two counts only, the
transport count is bounded by the user count (no disaggregation), and
groups are contiguous and aligned on ``n_user / n_transport``
boundaries.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional, Union

from repro.config import ClusterConfig
from repro.errors import ConfigError, TuningError
from repro.model.loggp import LogGPParams, LogGPTable
from repro.model.ploggp import optimal_transport_partitions
from repro.units import is_power_of_two


@dataclass(frozen=True)
class AdaptiveDelta:
    """Online δ auto-tuning parameters (paper Section IV-D names this
    as future work: "An online auto-tuning approach could be used").

    After each round the non-laggard arrival spread is measured and the
    next round's δ moves toward ``margin x spread`` with exponential
    smoothing ``alpha``, clamped to [min_delta, max_delta].
    """

    alpha: float = 0.5
    margin: float = 1.25
    min_delta: float = 1e-6
    max_delta: float = 1e-3

    def __post_init__(self):
        if not (0 < self.alpha <= 1):
            raise ConfigError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.margin <= 0:
            raise ConfigError(f"margin must be positive, got {self.margin}")
        if not (0 < self.min_delta <= self.max_delta):
            raise ConfigError("need 0 < min_delta <= max_delta")

    def update(self, current: float, observed_spread: float) -> float:
        """Next round's δ given this round's non-laggard spread."""
        target = self.margin * observed_spread
        blended = (1 - self.alpha) * current + self.alpha * target
        return min(max(blended, self.min_delta), self.max_delta)


@dataclass(frozen=True)
class AggregationPlan:
    """The per-request decision an aggregator produces."""

    n_transport: int
    n_qps: int
    #: Arm the δ-timer path with this value (None = plain PLogGP path).
    timer_delta: Optional[float] = None
    #: Online δ auto-tuning (requires timer_delta as the initial value).
    adaptive: Optional[AdaptiveDelta] = None
    #: Ablation: flush non-contiguous arrivals as ONE multi-SGE WR into
    #: a receive-side staging buffer (the alternative the paper
    #: considered and rejected in Section IV-D — it needs staging and
    #: out-of-band layout information at the receiver).
    scatter_gather: bool = False
    #: Closed-loop controller (repro.autotune).  When set, the module
    #: re-plans (n_transport, n_qps <= provisioned, delta) each round;
    #: None keeps every paper aggregator on the static single-plan path.
    controller: Optional[object] = None

    def __post_init__(self):
        if not is_power_of_two(self.n_transport):
            raise ConfigError(
                f"transport partition count must be a power of two, "
                f"got {self.n_transport}")
        if self.n_qps < 1:
            raise ConfigError(f"need at least one QP, got {self.n_qps}")
        if self.timer_delta is not None and self.timer_delta < 0:
            raise ConfigError(f"negative timer delta: {self.timer_delta}")
        if self.adaptive is not None and self.timer_delta is None:
            raise ConfigError("adaptive delta requires a timer_delta seed")


def _clamp_transport(n_transport: int, n_user: int) -> int:
    """Fall back to the user's request when the plan exceeds it."""
    return min(n_transport, n_user)


def _qps_for(n_transport: int, max_concurrent_wrs: int,
             config: ClusterConfig) -> int:
    """QPs so worst-case in-flight WRs respect the 16-per-QP limit."""
    limit = config.nic.max_outstanding_rdma
    needed = math.ceil(max_concurrent_wrs / limit)
    return max(1, min(n_transport, config.part.default_qps), needed)


class Aggregator(abc.ABC):
    """Strategy interface."""

    @abc.abstractmethod
    def plan(self, n_user: int, partition_size: int,
             config: ClusterConfig) -> AggregationPlan:
        """Decide transport partitions / QPs for one request."""

    def describe(self) -> str:
        return type(self).__name__


class FixedAggregation(Aggregator):
    """Explicit transport-partition and QP counts (the Fig. 6/7 sweeps)."""

    def __init__(self, n_transport: int, n_qps: int,
                 timer_delta: Optional[float] = None,
                 scatter_gather: bool = False):
        if not is_power_of_two(n_transport):
            raise ConfigError(
                f"n_transport must be a power of two, got {n_transport}")
        if n_qps < 1:
            raise ConfigError(f"n_qps must be >= 1, got {n_qps}")
        self.n_transport = n_transport
        self.n_qps = n_qps
        self.timer_delta = timer_delta
        self.scatter_gather = scatter_gather

    def plan(self, n_user, partition_size, config):
        return AggregationPlan(
            n_transport=_clamp_transport(self.n_transport, n_user),
            n_qps=self.n_qps,
            timer_delta=self.timer_delta,
            scatter_gather=self.scatter_gather,
        )

    def describe(self):
        return f"fixed(T={self.n_transport}, QP={self.n_qps})"


class NoAggregation(Aggregator):
    """One transport partition per user partition."""

    def __init__(self, n_qps: Optional[int] = None):
        if n_qps is not None and n_qps < 1:
            raise ConfigError(f"n_qps must be >= 1, got {n_qps}")
        self.n_qps = n_qps

    def plan(self, n_user, partition_size, config):
        n_qps = self.n_qps if self.n_qps is not None else _qps_for(
            n_user, n_user, config)
        return AggregationPlan(n_transport=n_user, n_qps=n_qps)

    def describe(self):
        return "none"


class PLogGPAggregator(Aggregator):
    """Model-driven aggregation (Section IV-C).

    Evaluates the PLogGP model at init with the message size, requested
    user partitions, and a delay, over power-of-two transport counts.
    """

    def __init__(self, params: Union[LogGPParams, LogGPTable],
                 delay: float, max_transport: int = 32):
        if delay < 0:
            raise ConfigError(f"negative delay: {delay}")
        if max_transport < 1:
            raise ConfigError(f"max_transport must be >= 1")
        self.params = params
        self.delay = delay
        self.max_transport = max_transport

    def plan(self, n_user, partition_size, config):
        total = n_user * partition_size
        n_transport = optimal_transport_partitions(
            self.params, total, n_user=n_user, delay=self.delay,
            max_transport=self.max_transport)
        n_transport = _clamp_transport(n_transport, n_user)
        return AggregationPlan(
            n_transport=n_transport,
            n_qps=_qps_for(n_transport, n_transport, config),
        )

    def describe(self):
        return f"ploggp(delay={self.delay})"


class TimerPLogGPAggregator(PLogGPAggregator):
    """PLogGP grouping plus the δ-timer dynamic path (Section IV-D).

    The first thread of a group to call ``Pready`` sleeps up to δ; on
    wake it flushes the largest contiguous runs of arrived partitions,
    and later arrivals send themselves immediately.  Worst case the
    module issues one WR per *user* partition, so QPs are sized for
    that.
    """

    def __init__(self, params: Union[LogGPParams, LogGPTable],
                 delay: float, delta: Optional[float] = None,
                 max_transport: int = 32, scatter_gather: bool = False):
        super().__init__(params, delay, max_transport)
        if delta is not None and delta < 0:
            raise ConfigError(f"negative delta: {delta}")
        self.delta = delta
        self.scatter_gather = scatter_gather

    def plan(self, n_user, partition_size, config):
        base = super().plan(n_user, partition_size, config)
        delta = self.delta if self.delta is not None else config.part.timer_delta
        return AggregationPlan(
            n_transport=base.n_transport,
            n_qps=_qps_for(base.n_transport, n_user, config),
            timer_delta=delta,
            scatter_gather=self.scatter_gather,
        )

    def describe(self):
        return f"timer-ploggp(delta={self.delta})"


class AdaptiveTimerAggregator(TimerPLogGPAggregator):
    """Timer aggregation with online δ auto-tuning.

    Implements the direction the paper flags as future work in
    Section IV-D: instead of a fixed δ, each round's non-laggard
    arrival spread feeds back into the next round's δ, so the timer
    stays just wide enough to cover the natural thread skew without
    adding artificial delay.
    """

    def __init__(self, params: Union[LogGPParams, LogGPTable],
                 delay: float, initial_delta: float,
                 adaptive: Optional["AdaptiveDelta"] = None,
                 max_transport: int = 32):
        super().__init__(params, delay, delta=initial_delta,
                         max_transport=max_transport)
        self.adaptive = adaptive if adaptive is not None else AdaptiveDelta()

    def plan(self, n_user, partition_size, config):
        base = super().plan(n_user, partition_size, config)
        return AggregationPlan(
            n_transport=base.n_transport,
            n_qps=base.n_qps,
            timer_delta=base.timer_delta,
            adaptive=self.adaptive,
        )

    def describe(self):
        return (f"adaptive-timer(seed={self.delta}, "
                f"alpha={self.adaptive.alpha})")
