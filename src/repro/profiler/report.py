"""Arrival-pattern reports: the data behind Figs. 10-12.

The paper plots, per user partition, the compute span (Start to
``MPI_Pready``) and an estimated communication span
(``comm = partition size / bandwidth``) appended at the arrival — and
asks how many partitions finish transferring before the laggard
arrives (the early-bird opportunity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ClusterConfig, NIAGARA


@dataclass(frozen=True)
class ArrivalProfile:
    """Fig. 10/11-style profile for one workload configuration."""

    partition_size: int
    #: Mean Pready time per partition, relative to MPI_Start,
    #: partitions sorted by arrival (laggard last).
    compute_spans: tuple[float, ...]
    #: Estimated wire time per partition (size / bandwidth).
    comm_span: float

    @property
    def n_partitions(self) -> int:
        return len(self.compute_spans)

    @property
    def laggard_time(self) -> float:
        return self.compute_spans[-1]

    def transfer_end(self, index: int) -> float:
        """When partition ``index`` (arrival order) finishes its wire
        time, assuming arrivals queue back-to-back on the wire."""
        end = 0.0
        for i in range(index + 1):
            end = max(end, self.compute_spans[i]) + self.comm_span
        return end


def arrival_profile(rounds: list[list[float]], partition_size: int,
                    config: ClusterConfig | None = None) -> ArrivalProfile:
    """Aggregate profiled rounds into a Fig. 10/11 profile.

    ``rounds`` holds per-round Pready times relative to Start (from
    :meth:`repro.profiler.PMPIProfiler.arrival_rounds`).  Arrivals are
    sorted per round before averaging so the rotating noise victim does
    not smear the laggard.
    """
    config = config if config is not None else NIAGARA
    if not rounds:
        raise ValueError("no profiled rounds")
    arr = np.sort(np.asarray(rounds, dtype=float), axis=1)
    spans = tuple(float(x) for x in arr.mean(axis=0))
    return ArrivalProfile(
        partition_size=partition_size,
        compute_spans=spans,
        comm_span=partition_size / config.nic.line_rate,
    )


def early_bird_fraction(profile: ArrivalProfile) -> float:
    """Fraction of non-laggard partitions whose transfer completes
    before the laggard arrives (Fig. 10: all of them at 8 MiB;
    Fig. 11: about 3/8 at 128 MiB)."""
    n = profile.n_partitions
    if n <= 1:
        return 0.0
    laggard = profile.laggard_time
    done_early = sum(
        1 for i in range(n - 1) if profile.transfer_end(i) <= laggard)
    return done_early / (n - 1)
