"""The MPI Partitioned profiler (paper Section V-A, footnote 1).

A PMPI-style interposition layer: :class:`~repro.profiler.pmpi.PMPIProfiler`
wraps a process's partitioned entry points and records when the program
reaches ``MPI_Start`` and each ``MPI_Pready``.  The reports in
:mod:`repro.profiler.report` turn those records into the paper's
arrival-pattern visualizations (Figs. 10-11) and the minimum-δ
estimates (Fig. 12).
"""

from repro.profiler.pmpi import CollectiveRound, PMPIProfiler, ProfiledRound
from repro.profiler.report import (
    ArrivalProfile,
    arrival_profile,
    early_bird_fraction,
)

__all__ = [
    "CollectiveRound",
    "PMPIProfiler",
    "ProfiledRound",
    "ArrivalProfile",
    "arrival_profile",
    "early_bird_fraction",
]
