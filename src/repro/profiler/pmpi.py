"""PMPI-style interposition on the partitioned entry points.

Attaching a profiler to a process wraps ``start`` and ``pready`` the
way a PMPI shim wraps ``MPI_Start``/``MPI_Pready``: the original call
runs unchanged, and the profiler records the virtual timestamp of the
program *reaching* the call — exactly the measurement methodology of
Section V-C2 ("measure the time the program arrives at MPI_Start, and
at each MPI_Pready call").

The partitioned-collective entry points (``pcoll_start`` /
``pcoll_pready`` / ``pcoll_wait``) are interposed the same way: each
Start..Wait cycle of a collective becomes a :class:`CollectiveRound`
carrying both the program-side pready call times and, per neighbor,
the ``MPI_Pready`` timeline the edge's send request observed — the
per-edge quantity the δ-timer and per-edge autotuners react to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.mpi.process import MPIProcess
    from repro.mpi.request import PartitionedRequest


@dataclass
class ProfiledRound:
    """One Start..completion cycle of one request."""

    request_id: int
    round_index: int
    t_start: float
    #: partition -> time the program reached MPI_Pready for it.
    pready: dict[int, float] = field(default_factory=dict)
    t_complete: Optional[float] = None
    #: Transport module that served the round — for a degradation
    #: ladder this is the *active rung* name, so demotions/promotions
    #: show up round by round in the profile.
    module: Optional[str] = None
    #: Ladder rung index (None when the edge runs no ladder).
    level: Optional[int] = None

    def pready_times(self) -> list[float]:
        """Per-partition call times, ordered by partition index."""
        return [self.pready[i] for i in sorted(self.pready)]

    def relative_pready_times(self) -> list[float]:
        """Call times relative to this round's ``MPI_Start``."""
        return [t - self.t_start for t in self.pready_times()]


@dataclass
class CollectiveRound:
    """One Start..Wait cycle of one partitioned collective."""

    coll_name: str
    epoch: int
    round_index: int
    t_start: float
    #: partition -> time the program reached ``pcoll_pready`` for it
    #: (a ``neighbor=None`` fan-out records once, at the call site).
    pready: dict[int, float] = field(default_factory=dict)
    #: neighbor rank -> per-partition ``MPI_Pready`` timestamps on that
    #: outgoing edge, snapshotted when the round's Wait completes.
    neighbor_pready: dict[int, list] = field(default_factory=dict)
    t_complete: Optional[float] = None
    #: neighbor rank -> transport module (active ladder rung) that
    #: served the round's outgoing edge, snapshotted at Wait.
    neighbor_modules: dict[int, str] = field(default_factory=dict)
    #: neighbor rank -> ladder rung index (None off-ladder edges).
    neighbor_levels: dict[int, Optional[int]] = field(default_factory=dict)

    def neighbor_spread(self) -> dict[int, Optional[float]]:
        """Per-edge pready spread (None where nothing was readied)."""
        out = {}
        for nbr, times in self.neighbor_pready.items():
            seen = [t for t in times if t is not None]
            out[nbr] = (max(seen) - min(seen)) if seen else None
        return out


class PMPIProfiler:
    """Wraps one process's partitioned calls and accumulates rounds."""

    def __init__(self):
        self.rounds: list[ProfiledRound] = []
        self.coll_rounds: list[CollectiveRound] = []
        self._open: dict[int, ProfiledRound] = {}
        self._open_coll: dict[int, CollectiveRound] = {}
        self._round_counter: dict[int, int] = {}
        self._coll_counter: dict[int, int] = {}
        self._attached: list = []

    def attach(self, process: "MPIProcess") -> None:
        """Interpose on ``process`` (idempotent per process)."""
        if process in self._attached:
            return
        self._attached.append(process)
        orig_start = process.start
        orig_pready = process.pready
        orig_wait = process.wait_partitioned
        profiler = self

        def start(req):
            profiler._record_start(process, req)
            result = yield from orig_start(req)
            return result

        def pready(req, partition):
            profiler._record_pready(process, req, partition)
            result = yield from orig_pready(req, partition)
            return result

        def wait_partitioned(req):
            result = yield from orig_wait(req)
            profiler._record_complete(process, req)
            return result

        orig_pcoll_start = process.pcoll_start
        orig_pcoll_pready = process.pcoll_pready
        orig_pcoll_wait = process.pcoll_wait

        def pcoll_start(coll):
            profiler._record_coll_start(process, coll)
            result = yield from orig_pcoll_start(coll)
            return result

        def pcoll_pready(coll, partition, neighbor=None):
            profiler._record_coll_pready(process, coll, partition)
            result = yield from orig_pcoll_pready(coll, partition,
                                                  neighbor=neighbor)
            return result

        def pcoll_wait(coll):
            result = yield from orig_pcoll_wait(coll)
            profiler._record_coll_complete(process, coll)
            return result

        process.start = start
        process.pready = pready
        process.wait_partitioned = wait_partitioned
        process.pcoll_start = pcoll_start
        process.pcoll_pready = pcoll_pready
        process.pcoll_wait = pcoll_wait

    @staticmethod
    def _module_of(req) -> tuple[Optional[str], Optional[int]]:
        """(module name, ladder level) actually serving ``req`` now."""
        module = getattr(req, "module", None)
        if module is None:
            return getattr(req, "module_name", None), None
        return (getattr(module, "rung_name", req.module_name),
                getattr(module, "level", None))

    def _record_start(self, process, req) -> None:
        index = self._round_counter.get(req.request_id, 0)
        self._round_counter[req.request_id] = index + 1
        record = ProfiledRound(
            request_id=req.request_id,
            round_index=index,
            t_start=process.env.now,
        )
        record.module, record.level = self._module_of(req)
        self._open[req.request_id] = record
        self.rounds.append(record)

    def _record_pready(self, process, req, partition) -> None:
        record = self._open.get(req.request_id)
        if record is not None:
            record.pready[partition] = process.env.now

    def _record_complete(self, process, req) -> None:
        record = self._open.get(req.request_id)
        if record is not None and record.t_complete is None:
            record.t_complete = process.env.now
            # Re-snapshot: the first Start can run before match time,
            # and a ladder may have swapped rungs since Start.
            record.module, record.level = self._module_of(req)

    def _record_coll_start(self, process, coll) -> None:
        index = self._coll_counter.get(id(coll), 0)
        self._coll_counter[id(coll)] = index + 1
        record = CollectiveRound(
            coll_name=coll.name,
            epoch=coll.epoch,
            round_index=index,
            t_start=process.env.now,
        )
        self._open_coll[id(coll)] = record
        self.coll_rounds.append(record)

    def _record_coll_pready(self, process, coll, partition) -> None:
        record = self._open_coll.get(id(coll))
        if record is not None and partition not in record.pready:
            record.pready[partition] = process.env.now

    def _record_coll_complete(self, process, coll) -> None:
        record = self._open_coll.get(id(coll))
        if record is not None and record.t_complete is None:
            record.t_complete = process.env.now
            record.neighbor_pready = {
                nbr: list(req.pready_times)
                for nbr, req in coll.sends.items()}
            for nbr, req in coll.sends.items():
                name, level = self._module_of(req)
                record.neighbor_modules[nbr] = name
                record.neighbor_levels[nbr] = level

    # -- accessors -----------------------------------------------------------

    def completed_rounds(self, skip: int = 0) -> list[ProfiledRound]:
        """Rounds with full pready data, skipping ``skip`` warm-ups."""
        full = [r for r in self.rounds if r.pready and r.t_complete is not None]
        return full[skip:]

    def arrival_rounds(self, skip: int = 0) -> list[list[float]]:
        """Per-round relative pready times (min-δ estimation input)."""
        return [r.relative_pready_times() for r in self.completed_rounds(skip)]

    def completed_coll_rounds(self, skip: int = 0) -> list[CollectiveRound]:
        """Collective rounds that reached Wait, skipping warm-ups."""
        full = [r for r in self.coll_rounds if r.t_complete is not None]
        return full[skip:]
