"""PMPI-style interposition on the partitioned entry points.

Attaching a profiler to a process wraps ``start`` and ``pready`` the
way a PMPI shim wraps ``MPI_Start``/``MPI_Pready``: the original call
runs unchanged, and the profiler records the virtual timestamp of the
program *reaching* the call — exactly the measurement methodology of
Section V-C2 ("measure the time the program arrives at MPI_Start, and
at each MPI_Pready call").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.mpi.process import MPIProcess
    from repro.mpi.request import PartitionedRequest


@dataclass
class ProfiledRound:
    """One Start..completion cycle of one request."""

    request_id: int
    round_index: int
    t_start: float
    #: partition -> time the program reached MPI_Pready for it.
    pready: dict[int, float] = field(default_factory=dict)
    t_complete: Optional[float] = None

    def pready_times(self) -> list[float]:
        """Per-partition call times, ordered by partition index."""
        return [self.pready[i] for i in sorted(self.pready)]

    def relative_pready_times(self) -> list[float]:
        """Call times relative to this round's ``MPI_Start``."""
        return [t - self.t_start for t in self.pready_times()]


class PMPIProfiler:
    """Wraps one process's partitioned calls and accumulates rounds."""

    def __init__(self):
        self.rounds: list[ProfiledRound] = []
        self._open: dict[int, ProfiledRound] = {}
        self._round_counter: dict[int, int] = {}
        self._attached: list = []

    def attach(self, process: "MPIProcess") -> None:
        """Interpose on ``process`` (idempotent per process)."""
        if process in self._attached:
            return
        self._attached.append(process)
        orig_start = process.start
        orig_pready = process.pready
        orig_wait = process.wait_partitioned
        profiler = self

        def start(req):
            profiler._record_start(process, req)
            result = yield from orig_start(req)
            return result

        def pready(req, partition):
            profiler._record_pready(process, req, partition)
            result = yield from orig_pready(req, partition)
            return result

        def wait_partitioned(req):
            result = yield from orig_wait(req)
            profiler._record_complete(process, req)
            return result

        process.start = start
        process.pready = pready
        process.wait_partitioned = wait_partitioned

    def _record_start(self, process, req) -> None:
        index = self._round_counter.get(req.request_id, 0)
        self._round_counter[req.request_id] = index + 1
        record = ProfiledRound(
            request_id=req.request_id,
            round_index=index,
            t_start=process.env.now,
        )
        self._open[req.request_id] = record
        self.rounds.append(record)

    def _record_pready(self, process, req, partition) -> None:
        record = self._open.get(req.request_id)
        if record is not None:
            record.pready[partition] = process.env.now

    def _record_complete(self, process, req) -> None:
        record = self._open.get(req.request_id)
        if record is not None and record.t_complete is None:
            record.t_complete = process.env.now

    # -- accessors -----------------------------------------------------------

    def completed_rounds(self, skip: int = 0) -> list[ProfiledRound]:
        """Rounds with full pready data, skipping ``skip`` warm-ups."""
        full = [r for r in self.rounds if r.pready and r.t_complete is not None]
        return full[skip:]

    def arrival_rounds(self, skip: int = 0) -> list[list[float]]:
        """Per-round relative pready times (min-δ estimation input)."""
        return [r.relative_pready_times() for r in self.completed_rounds(skip)]
