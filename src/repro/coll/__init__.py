"""Partitioned collectives: MPIX-style persistent collectives composed
from per-neighbor ``Psend``/``Precv`` pairs.

The point-to-point partitioned API (``psend_init``/``pready``/...)
aggregates one matched pair; this layer lifts those semantics into
collectives the way MPI Advance's ``MPIX_Pneighbor_alltoall_init``
does: every edge of the communication graph is its own matched
partitioned pair, so every edge carries its *own* aggregation plan —
a tuning-table lookup at that edge's message size, a PLogGP plan, or
an attached :class:`~repro.autotune.AutotuneController` per neighbor.

Members:

* :class:`PartitionedCollective` — the shared lifecycle (init once,
  then ``start``/``pready``/``wait`` per round);
* :class:`PneighborAlltoall` — persistent partitioned
  neighbor-alltoall (halo exchange's collective);
* :class:`Pbcast` / :class:`Pallreduce` — partitioned broadcast and
  allreduce over binomial trees, forwarding partitions down/up the
  tree as they become ready;
* :func:`edge_modules` / :func:`per_edge_autotuners` /
  :func:`ladder_modules` — per-edge transport-plan resolution (the
  last wraps each edge in a graceful-degradation ladder);
* :func:`run_stencil` — the threaded 2D/3D stencil application driver
  (worker threads ``Pready`` boundary partitions as they finish).

Entry points live on :class:`~repro.mpi.process.MPIProcess`
(``pneighbor_alltoall_init``, ``pbcast_init``, ``pallreduce_init``,
``pcoll_start``, ``pcoll_pready``, ``pcoll_parrived``, ``pcoll_wait``)
so applications stay written against the rank-local MPI surface.
"""

from repro.coll.base import PartitionedCollective
from repro.coll.neighbor import PneighborAlltoall
from repro.coll.plans import edge_modules, ladder_modules, per_edge_autotuners
from repro.coll.stencil import StencilResult, run_stencil
from repro.coll.tree import Pallreduce, Pbcast

__all__ = [
    "PartitionedCollective",
    "PneighborAlltoall",
    "Pbcast",
    "Pallreduce",
    "edge_modules",
    "ladder_modules",
    "per_edge_autotuners",
    "StencilResult",
    "run_stencil",
]
