"""Partitioned broadcast and allreduce over binomial trees.

Both collectives reuse the binomial topology helpers of the classic
(blocking) collectives in :mod:`repro.mpi.collectives`, but move data
through persistent per-edge partitioned pairs: a partition flows down
(or up) the tree as soon as it is ready, edge by edge, without waiting
for its siblings.  Interior ranks run a per-round *forwarder* process
that watches arrivals on the inbound edge and ``Pready``\\ s the
partition on the outbound edges — the tree-collective analogue of the
paper's "ready partitions go on the wire now" pipelining.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.coll.base import PartitionedCollective
from repro.coll.plans import edge_modules
from repro.errors import MPIError, PartitionError
from repro.mem.buffer import PartitionedBuffer
from repro.mpi.collectives import _binomial_children, _binomial_parent

if TYPE_CHECKING:
    from repro.mpi.process import MPIProcess


def _sum_inplace(dst: np.ndarray, src: np.ndarray) -> None:
    """Default allreduce op: elementwise sum (uint8, wrapping)."""
    dst += src


class _TreeCollective(PartitionedCollective):
    """Shared binomial-tree scaffolding (parent/children edges)."""

    def __init__(self, process: "MPIProcess", buf: PartitionedBuffer,
                 world: int, root: int = 0):
        if world < 1:
            raise MPIError(f"world must be >= 1, got {world}")
        if not (0 <= root < world):
            raise MPIError(f"root {root} outside world of {world}")
        if process.rank >= world:
            raise MPIError(
                f"rank {process.rank} outside world of {world}")
        super().__init__(process)
        self.buf = buf
        self.world = world
        self.root = root
        if world == 1:
            self.parent: Optional[int] = None
            self.children: list[int] = []
        else:
            self.parent = _binomial_parent(process.rank, root, world)
            self.children = _binomial_children(process.rank, root, world)

    def _check_partition(self, index: int) -> None:
        if not (0 <= index < self.buf.n_partitions):
            raise PartitionError(
                f"partition {index} outside [0, {self.buf.n_partitions})")


class Pbcast(_TreeCollective):
    """Persistent partitioned broadcast.

    The root ``Pready``\\ s partitions of ``buf`` as they become valid;
    every other rank receives them into its own ``buf``, interior
    ranks forwarding each partition to their subtree the moment it
    arrives.  ``parrived(None, p)`` asks whether partition ``p`` holds
    broadcast data yet on this rank.
    """

    name = "coll.pbcast"

    def __init__(self, process: "MPIProcess", buf: PartitionedBuffer,
                 world: int, root: int = 0, module_for=None):
        super().__init__(process, buf, world, root)
        resolve = edge_modules(module_for)
        if self.parent is not None:
            self.recvs[self.parent] = process.precv_init(
                buf, source=self.parent, tag=self._tag("d"),
                module=resolve(self.parent))
        for child in self.children:
            self.sends[child] = process.psend_init(
                buf, dest=child, tag=self._tag("d"), module=resolve(child))

    def _post_start(self) -> None:
        if self.parent is not None and self.sends:
            self.process.env.process(self._forward_round())

    def _forward_round(self):
        """Interior rank: push each partition downtree as it arrives."""
        inbound = self.recvs[self.parent]
        n = inbound.n_partitions
        forwarded = [False] * n

        def arrivals():
            return [p for p in range(n)
                    if inbound.arrived[p] and not forwarded[p]]

        while not all(forwarded):
            ready = arrivals()
            if not ready:
                yield from self.process.engine.wait_until(
                    lambda: bool(arrivals()))
                continue
            for p in ready:
                forwarded[p] = True
                for child in self.children:
                    yield from self.process.pready(self.sends[child], p)

    def pready(self, partition: int, neighbor: Optional[int] = None):
        if self.process.rank != self.root:
            raise MPIError(
                f"Pready on a Pbcast is root-only (rank "
                f"{self.process.rank}, root {self.root})")
        self._check_partition(partition)
        yield from super().pready(partition, neighbor)

    def parrived(self, neighbor: Optional[int] = None, partition: int = 0):
        """Whether ``partition`` holds broadcast data on this rank yet.

        ``neighbor`` defaults to the tree parent (the only inbound
        edge); on the root it is ignored and the answer is ``True``.
        """
        self._check_partition(partition)
        if self.parent is None:
            yield from self.process.engine.progress_once()
            return True
        result = yield from super().parrived(
            self.parent if neighbor is None else neighbor, partition)
        return result


class Pallreduce(_TreeCollective):
    """Persistent partitioned allreduce (reduce up + broadcast down).

    Every rank contributes ``buf`` and ends the round with the reduced
    result in ``buf``.  Per partition, the pipeline is: the app
    ``Pready``\\ s its contribution; once every child's contribution
    has arrived the rank folds them in with ``op`` (in-place
    ``op(dst, src)``, elementwise sum by default) and readies the
    partial uptree; the root's completed partitions stream back
    downtree immediately.  Each edge and direction is its own matched
    pair, so asymmetric edges can carry different aggregation plans.
    """

    name = "coll.pallreduce"

    def __init__(self, process: "MPIProcess", buf: PartitionedBuffer,
                 world: int,
                 op: Optional[Callable[[np.ndarray, np.ndarray], None]] = None,
                 module_for=None, root: int = 0):
        super().__init__(process, buf, world, root)
        self.op = op if op is not None else _sum_inplace
        resolve = edge_modules(module_for)
        n, size = buf.n_partitions, buf.partition_size
        #: Per-child staging buffers for uptree contributions.
        self._stage: dict[int, PartitionedBuffer] = {}
        for child in self.children:
            stage = PartitionedBuffer(n, size, backed=buf.backed)
            self._stage[child] = stage
            self.recvs[child] = process.precv_init(
                stage, source=child, tag=self._tag("up"),
                module=resolve(child))
        if self.parent is not None:
            self.sends[self.parent] = process.psend_init(
                buf, dest=self.parent, tag=self._tag("up"),
                module=resolve(self.parent))
            self.recvs[self.parent] = process.precv_init(
                buf, source=self.parent, tag=self._tag("down"),
                module=resolve(self.parent))
        for child in self.children:
            self.sends[child] = process.psend_init(
                buf, dest=child, tag=self._tag("down"),
                module=resolve(child))
        # Trivially final while inactive (MPI_Wait on an inactive
        # persistent request returns immediately); reset per Start.
        self._own_ready = [True] * n
        self._reduced = [True] * n
        self._final = [True] * n

    @property
    def done(self) -> bool:
        return super().done and all(self._final)

    def _post_start(self) -> None:
        n = self.buf.n_partitions
        self._own_ready = [False] * n
        self._reduced = [False] * n
        self._final = [False] * n
        self.process.env.process(self._run_round())

    # -- per-round machinery --------------------------------------------

    def _can_reduce(self, p: int) -> bool:
        return (not self._reduced[p] and self._own_ready[p]
                and all(self.recvs[c].arrived[p] for c in self.children))

    def _can_finalize(self, p: int) -> bool:
        return (not self._final[p] and self.parent is not None
                and bool(self.recvs[self.parent].arrived[p]))

    def _actionable(self) -> bool:
        return any(self._can_reduce(p) or self._can_finalize(p)
                   for p in range(self.buf.n_partitions))

    def _fold(self, p: int) -> None:
        if not self.buf.backed:
            return
        dst = self.buf.partition_view(p)
        for child in self.children:
            self.op(dst, self._stage[child].partition_view(p))

    def _run_round(self):
        """Per-round driver: reduce uptree, stream results downtree."""
        n = self.buf.n_partitions
        while not all(self._final):
            progressed = False
            for p in range(n):
                if self._can_reduce(p):
                    progressed = True
                    self._reduced[p] = True
                    self._fold(p)
                    if self.parent is not None:
                        yield from self.process.pready(
                            self.sends[self.parent], p)
                    else:
                        # Root: the fold *is* the final result.
                        self._final[p] = True
                        for child in self.children:
                            yield from self.process.pready(
                                self.sends[child], p)
                if self._can_finalize(p):
                    progressed = True
                    self._final[p] = True
                    for child in self.children:
                        yield from self.process.pready(self.sends[child], p)
            if progressed or all(self._final):
                continue
            yield from self.process.engine.wait_until(
                lambda: self._actionable())

    # -- app surface -----------------------------------------------------

    def pready(self, partition: int, neighbor: Optional[int] = None):
        """Mark this rank's contribution to ``partition`` ready."""
        self._check_partition(partition)
        if neighbor is not None:
            raise MPIError(
                "an allreduce contribution is collective; it cannot be "
                "readied toward a single neighbor")
        self._own_ready[partition] = True
        self.process.engine.kick()
        yield from self.process.engine.progress_once()

    def parrived(self, neighbor: Optional[int] = None, partition: int = 0):
        """Whether the *reduced* result for ``partition`` is in ``buf``."""
        self._check_partition(partition)
        if self._final[partition]:
            return True
        yield from self.process.engine.progress_once()
        return self._final[partition]
