"""Threaded stencil application driver over partitioned neighbor-alltoall.

A 2-D/3-D Cartesian rank grid exchanging halos each timestep through
one persistent :class:`~repro.coll.neighbor.PneighborAlltoall` per
rank: worker threads compute interior rows and ``Pready`` their slice
of the boundary partitions as they finish, on every face at once.

The anisotropy knob matters here: ``face_bytes`` may differ per axis
(a non-cubic local domain), so a rank's edges carry different message
sizes — the regime where one global aggregation plan cannot be right
for every edge and per-edge plans (Table 1's size-dependent optimum)
pay off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.config import ClusterConfig, NIAGARA
from repro.mem.buffer import PartitionedBuffer
from repro.mpi.cluster import Cluster
from repro.runtime import ComputePhase, SingleThreadDelay, WorkerTeam
from repro.sim.sync import SimBarrier


@dataclass
class StencilResult:
    """Stencil run outcome with per-edge diagnostics."""

    grid: tuple[int, ...]
    n_threads: int
    n_partitions: int
    face_bytes: tuple[int, ...]
    compute: float
    noise_fraction: float
    #: Per-iteration wall time (max across ranks), warmup excluded.
    times: list[float] = field(default_factory=list)
    #: rank -> neighbor -> edge diagnostics of the last iteration.
    edge_stats: dict = field(default_factory=dict)
    #: rank -> neighbor -> aggregator ``describe()`` (native edges only).
    plans: dict = field(default_factory=dict)
    #: Backed-run integrity: faces whose received bytes were wrong.
    integrity_failures: int = 0
    #: Fabric counters after the run (fault/recovery accounting).
    counters: dict = field(default_factory=dict)

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times))

    @property
    def mean_comm_time(self) -> float:
        """Iteration time minus the (parallel) compute phase."""
        return float(np.mean([t - self.compute for t in self.times]))


def _axes_of(grid: tuple[int, ...],
             face_bytes: Union[int, Sequence[int]]) -> tuple[int, ...]:
    ndim = len(grid)
    if ndim not in (2, 3):
        raise ValueError(f"grid must be 2-D or 3-D, got {grid}")
    if any(g < 1 for g in grid):
        raise ValueError(f"bad grid {grid}")
    if isinstance(face_bytes, int):
        return (face_bytes,) * ndim
    sizes = tuple(int(b) for b in face_bytes)
    if len(sizes) != ndim:
        raise ValueError(
            f"face_bytes has {len(sizes)} entries for a {ndim}-D grid")
    return sizes


def run_stencil(
    module=None,
    planner: Optional[Callable] = None,
    grid: tuple[int, ...] = (2, 2),
    n_threads: int = 4,
    n_partitions: Optional[int] = None,
    face_bytes: Union[int, Sequence[int]] = 1 << 16,
    compute: float = 1e-3,
    noise_fraction: float = 0.01,
    iterations: int = 4,
    warmup: int = 1,
    config: Optional[ClusterConfig] = None,
    topology=None,
    faults=None,
    backed: bool = False,
) -> StencilResult:
    """Run the stencil; returns timings plus per-edge diagnostics.

    ``module`` is a shared per-edge plan in :func:`repro.coll.edge_modules`
    vocabulary (``None`` = the ``part_persist`` baseline everywhere);
    ``planner``, when given, wins and is called once per rank as
    ``planner(proc, neighbor_axes)`` — where ``neighbor_axes`` maps
    neighbor rank to its axis — returning that rank's ``module_for``.
    ``backed=True`` moves real bytes and verifies every face each
    iteration (the exactly-once check the fault tests lean on);
    ``faults`` installs a :class:`~repro.faults.FaultSchedule`.
    """
    config = config if config is not None else NIAGARA
    sizes = _axes_of(tuple(grid), face_bytes)
    ndim = len(grid)
    n_partitions = n_threads if n_partitions is None else n_partitions
    if n_partitions % n_threads:
        raise ValueError(
            f"{n_partitions} partitions not divisible by "
            f"{n_threads} threads")
    part_sizes = []
    for axis, nbytes in enumerate(sizes):
        if nbytes % n_partitions:
            raise ValueError(
                f"axis-{axis} face of {nbytes}B not divisible into "
                f"{n_partitions} partitions")
        part_sizes.append(nbytes // n_partitions)

    n_ranks = int(np.prod(grid))
    cluster = Cluster(n_nodes=n_ranks, config=config, topology=topology)
    if faults is not None:
        cluster.fabric.install_faults(faults)
    procs = cluster.ranks(n_ranks)
    barrier = SimBarrier(cluster.env, parties=n_ranks)
    total_rounds = warmup + iterations
    round_start = [0.0] * total_rounds
    finish = np.zeros((total_rounds, n_ranks))
    phase = ComputePhase(compute=compute,
                         noise=SingleThreadDelay(noise_fraction))
    per_thread = n_partitions // n_threads
    result = StencilResult(
        grid=tuple(grid), n_threads=n_threads, n_partitions=n_partitions,
        face_bytes=sizes, compute=compute, noise_fraction=noise_fraction)

    def rank_id(coord: tuple[int, ...]) -> int:
        rid = 0
        for axis in range(ndim):
            rid = rid * grid[axis] + coord[axis]
        return rid

    def coord_of(rid: int) -> tuple[int, ...]:
        coord = []
        for axis in reversed(range(ndim)):
            coord.append(rid % grid[axis])
            rid //= grid[axis]
        return tuple(reversed(coord))

    def neighbor_axes(coord: tuple[int, ...]) -> dict[int, int]:
        """Neighbor rank -> axis of the shared face (non-periodic)."""
        out = {}
        for axis in range(ndim):
            for step in (-1, +1):
                c = coord[axis] + step
                if 0 <= c < grid[axis]:
                    nbr = list(coord)
                    nbr[axis] = c
                    out[rank_id(tuple(nbr))] = axis
        return out

    def fill_seed(it: int, src: int, dst: int) -> int:
        return ((it * n_ranks + src) * n_ranks + dst) % (1 << 31)

    def rank_program(proc, coord: tuple[int, ...]):
        rid = rank_id(coord)
        axes = neighbor_axes(coord)
        send_bufs, recv_bufs = {}, {}
        for nbr, axis in axes.items():
            send_bufs[nbr] = PartitionedBuffer(
                n_partitions, part_sizes[axis], backed=backed)
            recv_bufs[nbr] = PartitionedBuffer(
                n_partitions, part_sizes[axis], backed=backed)
        module_for = planner(proc, dict(axes)) if planner else module
        coll = proc.pneighbor_alltoall_init(send_bufs, recv_bufs,
                                            module_for)
        team = WorkerTeam(proc.env, n_threads,
                          cluster.rngs.stream(f"noise.rank{rid}"),
                          cores=config.host.cores_per_node)

        def body(tid):
            for p in range(tid * per_thread, (tid + 1) * per_thread):
                yield from proc.pcoll_pready(coll, p)

        for it in range(total_rounds):
            yield barrier.wait()
            if rid == 0:
                round_start[it] = proc.env.now
            if backed:
                for nbr, buf in send_bufs.items():
                    buf.fill_pattern(fill_seed(it, rid, nbr))
            yield from proc.pcoll_start(coll)
            yield team.run_round(phase, lambda tid: body(tid))
            yield from proc.pcoll_wait(coll)
            if backed:
                for nbr, buf in recv_bufs.items():
                    expect = buf.expected_pattern(
                        0, buf.nbytes, fill_seed(it, nbr, rid))
                    if not np.array_equal(buf.data, expect):
                        result.integrity_failures += 1
            finish[it, rid] = proc.env.now
        result.edge_stats[rid] = coll.edge_stats()
        result.plans[rid] = {
            nbr: req.module_spec.aggregator.describe()
            for nbr, req in coll.sends.items()
            if getattr(req.module_spec, "aggregator", None) is not None
        }

    for rid in range(n_ranks):
        cluster.spawn(rank_program(procs[rid], coord_of(rid)))
    cluster.run()
    result.counters = cluster.fabric.counters.as_dict()
    for it in range(warmup, total_rounds):
        result.times.append(float(finish[it].max() - round_start[it]))
    return result
