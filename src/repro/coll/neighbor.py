"""Persistent partitioned neighbor-alltoall.

The collective behind multi-threaded halo exchange: every rank owns
one partitioned send buffer and one partitioned receive buffer per
neighbor, and a round moves every face concurrently.  Compared to the
hand-rolled per-face ``psend_init`` loops the benchmarks used to
write, the collective (a) namespaces all member tags under one epoch,
(b) gives ``pready(partition)`` the "ready on every face" semantics a
compute thread wants, and (c) carries one aggregation plan per edge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.coll.base import PartitionedCollective
from repro.coll.plans import edge_modules
from repro.errors import MPIError
from repro.mem.buffer import PartitionedBuffer

if TYPE_CHECKING:
    from repro.mpi.process import MPIProcess


class PneighborAlltoall(PartitionedCollective):
    """``MPIX_Pneighbor_alltoall_init`` over partitioned pairs.

    ``send_bufs`` and ``recv_bufs`` map neighbor rank to the
    :class:`~repro.mem.buffer.PartitionedBuffer` exchanged with it;
    the key sets must be equal (a neighborhood edge is bidirectional,
    as in a stencil halo).  ``module_for`` picks the transport plan
    per edge — see :func:`repro.coll.edge_modules`.
    """

    name = "coll.neighbor"

    def __init__(self, process: "MPIProcess",
                 send_bufs: Mapping[int, PartitionedBuffer],
                 recv_bufs: Mapping[int, PartitionedBuffer],
                 module_for=None):
        super().__init__(process)
        if set(send_bufs) != set(recv_bufs):
            raise MPIError(
                f"neighbor sets differ: send {sorted(send_bufs)} vs "
                f"recv {sorted(recv_bufs)}")
        if process.rank in send_bufs:
            raise MPIError("a rank cannot neighbor itself")
        resolve = edge_modules(module_for)
        for nbr in sorted(send_bufs):
            tag = self._tag("x")
            self.sends[nbr] = process.psend_init(
                send_bufs[nbr], dest=nbr, tag=tag, module=resolve(nbr))
            self.recvs[nbr] = process.precv_init(
                recv_bufs[nbr], source=nbr, tag=tag, module=resolve(nbr))
