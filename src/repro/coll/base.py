"""The shared lifecycle of a partitioned collective.

A :class:`PartitionedCollective` owns a set of matched per-neighbor
:class:`~repro.mpi.request.PsendRequest`/:class:`~repro.mpi.request.PrecvRequest`
members.  Like the point-to-point partitioned requests it is
*persistent*: init once (edges match, modules instantiate, QPs come
up asynchronously), then every round is ``pcoll_start`` →
``pcoll_pready`` from worker threads → ``pcoll_wait``.

Tag discipline: each collective instance draws one epoch from
:meth:`~repro.mpi.process.MPIProcess.next_coll_epoch` under its class
``name``, so repeated and concurrent collectives never cross-match as
long as every rank issues them in the same order.  Edge tags only need
to disambiguate *within* the instance — the matching key already
includes the (source, destination) rank pair.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import MPIError

if TYPE_CHECKING:
    from repro.mpi.process import MPIProcess
    from repro.mpi.request import PrecvRequest, PsendRequest


class PartitionedCollective:
    """Base: a bundle of per-neighbor partitioned request pairs."""

    #: Epoch namespace; subclasses override (``coll.neighbor``, ...).
    name = "coll.base"

    def __init__(self, process: "MPIProcess"):
        self.process = process
        self.epoch = process.next_coll_epoch(self.name)
        #: Outgoing edges: neighbor rank -> PsendRequest.
        self.sends: dict[int, "PsendRequest"] = {}
        #: Incoming edges: neighbor rank -> PrecvRequest.
        self.recvs: dict[int, "PrecvRequest"] = {}
        #: Rounds started so far (increments on each ``start``).
        self.round = 0

    # -- construction helpers (subclasses) ------------------------------

    def _tag(self, *extra) -> tuple:
        return (self.name, self.epoch, *extra)

    # -- lifecycle -------------------------------------------------------

    @property
    def neighbors(self) -> list[int]:
        """Every rank this collective exchanges with (sorted)."""
        return sorted(set(self.sends) | set(self.recvs))

    @property
    def requests(self) -> list:
        """All member requests (recvs first, matching start order)."""
        return list(self.recvs.values()) + list(self.sends.values())

    @property
    def done(self) -> bool:
        """Whether this round has fully completed on this rank."""
        return all(req.done for req in self.requests)

    def start(self):
        """(Re)activate every member for a new round; yields.

        Receives start before sends, so a peer's first partition can
        never land before its target round is armed.  Subclasses hook
        :meth:`_post_start` to spawn per-round forwarding machinery.
        """
        self.round += 1
        for req in self.requests:
            yield from self.process.start(req)
        self._post_start()

    def _post_start(self) -> None:
        """Per-round hook run after every member is active."""

    def pready(self, partition: int, neighbor: Optional[int] = None):
        """Mark ``partition`` ready; yields (worker-thread context).

        ``neighbor=None`` readies the partition on every outgoing edge
        — the common stencil idiom where one thread's boundary work
        feeds all of its faces at once.
        """
        for nbr in self._pready_targets(neighbor):
            yield from self.process.pready(self.sends[nbr], partition)

    def _pready_targets(self, neighbor: Optional[int]) -> Iterable[int]:
        if neighbor is None:
            return list(self.sends)
        if neighbor not in self.sends:
            raise MPIError(
                f"rank {self.process.rank} has no outgoing edge to "
                f"{neighbor} in {type(self).__name__}")
        return (neighbor,)

    def parrived(self, neighbor: int, partition: int):
        """Arrival test on one inbound edge; yields, returns bool."""
        if neighbor not in self.recvs:
            raise MPIError(
                f"rank {self.process.rank} has no inbound edge from "
                f"{neighbor} in {type(self).__name__}")
        result = yield from self.process.parrived(
            self.recvs[neighbor], partition)
        return result

    def wait(self):
        """Progress until the whole round completes on this rank."""
        yield from self.process.engine.wait_until(lambda: self.done)

    # -- diagnostics -----------------------------------------------------

    def edge_stats(self) -> dict:
        """Per-edge diagnostics of the *current* round.

        For each outgoing edge: the ``MPI_Pready`` timeline, its
        non-laggard spread vs. laggard gap (the per-edge quantities the
        δ-timer and autotuner react to), and the transport module's WR
        accounting when the module exposes it.
        """
        stats = {}
        for nbr, req in self.sends.items():
            times = [t for t in req.pready_times if t is not None]
            entry = {
                "pready_times": list(req.pready_times),
                "spread": (max(times) - min(times)) if times else None,
            }
            module = req.module
            if module is not None and hasattr(module, "total_wrs_posted"):
                entry["wrs_posted"] = module.total_wrs_posted
                entry["timer_flushes"] = module.timer_flushes
            stats[nbr] = entry
        return stats

    def controllers(self) -> dict:
        """Per-edge attached autotune controllers (edges without one
        are omitted)."""
        out = {}
        for nbr, req in self.sends.items():
            spec = getattr(req, "module_spec", None)
            agg = getattr(spec, "aggregator", None)
            controller = getattr(agg, "controller", None)
            if controller is not None:
                out[nbr] = controller
        return out

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} rank={self.process.rank} "
                f"epoch={self.epoch} neighbors={self.neighbors} "
                f"round={self.round}>")
