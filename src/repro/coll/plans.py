"""Per-edge transport-plan resolution, lowered through the plan IR.

Every edge of a partitioned collective is its own matched pair, so
every edge can run its own aggregation plan.  :func:`edge_modules`
normalizes the ``module_for`` argument the collective inits accept —
anything from "one baseline everywhere" to "a fresh closed-loop
autotuner per neighbor" — into one canonical shape::

    resolve(neighbor_rank) -> ModuleSpec        # fresh per edge

Accepted inputs:

* ``None`` — the ``part_persist`` baseline on every edge;
* a :class:`repro.plan.Plan` — lowered through
  :func:`repro.plan.lower`; a plan with top-level ``edge`` ops
  resolves per neighbor (non-edge ops are the default body);
* an :class:`~repro.core.aggregators.Aggregator` — the native module
  with that (shared) aggregator on every edge; static aggregators are
  stateless so sharing is safe, and each matched pair still computes
  its own plan at its own message size;
* a :class:`~repro.mpi.modules.ModuleSpec` or zero-argument spec
  factory — reused/invoked for every edge;
* a one-argument callable ``f(neighbor)`` returning any of the above
  — full per-edge control (:func:`per_edge_autotuners` builds the
  common case: one independent autotune controller per neighbor).

Since the plan-IR refactor, the canonical degradation ladder is not
hand-assembled here: :func:`ladder_modules` instantiates
:func:`repro.plan.default_ladder_plan` and substitutes the preferred
transport into the ``native()`` slot, so ``repro-bench plan show``
prints exactly the ladder the collective will run.
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional

from repro.core.aggregators import Aggregator
from repro.mpi.modules import ModuleSpec
from repro.plan import Edge, Fallback, Native, Plan
from repro.plan import lower as lower_plan
from repro.plan import lower_edges

#: Canonical resolver: neighbor rank -> module spec for that edge.
EdgeModules = Callable[[int], ModuleSpec]


def _spec_for(module) -> ModuleSpec:
    """One concrete ModuleSpec from a plan/aggregator/spec/factory/None."""
    if module is None:
        from repro.mpi.persist_module import PersistSpec

        return PersistSpec()
    if isinstance(module, Plan):
        return lower_plan(module)
    if isinstance(module, Aggregator):
        from repro.core.module import NativeSpec

        return NativeSpec(module)
    if isinstance(module, ModuleSpec):
        return module
    if callable(module):
        return _spec_for(module())
    raise TypeError(
        f"cannot resolve {module!r} into a partitioned transport module")


def _takes_neighbor(fn) -> bool:
    """Whether ``fn`` is a per-neighbor resolver (one positional arg)."""
    try:
        params = list(inspect.signature(fn).parameters.values())
    except (TypeError, ValueError):
        return False
    positional = [p for p in params
                  if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
                  and p.default is p.empty]
    return len(positional) == 1


def edge_modules(module_for) -> EdgeModules:
    """Normalize ``module_for`` into a per-neighbor spec resolver."""
    if isinstance(module_for, Plan) and module_for.find(Edge):
        return lower_edges(module_for)
    if (callable(module_for) and not isinstance(module_for, Aggregator)
            and not isinstance(module_for, (ModuleSpec, Plan))
            and _takes_neighbor(module_for)):
        return lambda neighbor: _spec_for(module_for(neighbor))
    return lambda neighbor: _spec_for(module_for)


def ladder_modules(module_for=None, rungs=None) -> EdgeModules:
    """Wrap every edge's transport in a graceful-degradation ladder.

    ``module_for`` (any shape :func:`edge_modules` accepts) names the
    preferred rung, substituted into the ``native()`` slot of
    :func:`repro.plan.default_ladder_plan` — so a tripped edge
    degrades native → persist → channels, and a rung that would
    duplicate an earlier one (a persist top) is folded away.  Pass
    ``rungs`` (a per-neighbor callable or a list of specs/plans) to
    override the full chain instead.
    """
    from repro.mpi.ladder import LadderSpec
    from repro.plan import default_ladder_plan

    if rungs is not None:
        if callable(rungs):
            return lambda neighbor: LadderSpec(
                [_spec_for(r) for r in rungs(neighbor)])
        specs = [_spec_for(r) for r in rungs]
        return lambda neighbor: LadderSpec(specs)
    resolve = edge_modules(module_for)
    ladder = default_ladder_plan()

    def build(neighbor: int) -> ModuleSpec:
        top = resolve(neighbor)
        chain, names = [], set()
        for rung in ladder.first(Fallback).rungs:
            spec = top if rung.first(Native) is not None \
                else lower_plan(rung)
            if spec.name in names:
                continue
            names.add(spec.name)
            chain.append(spec)
        return LadderSpec(chain)

    return build


def per_edge_autotuners(params: Optional[dict] = None,
                        store=None) -> EdgeModules:
    """A fresh closed-loop autotuner per neighbor.

    Each edge gets its own
    :class:`~repro.autotune.AdaptiveAggregator` (and therefore its own
    :class:`~repro.autotune.AutotuneController`), built from the same
    JSON-safe ``params`` that :func:`repro.autotune.build_autotuner`
    takes.  With a ``store``, edges learn plans under distinct keys —
    the neighbor rank is mixed into the workload key so asymmetric
    edges (different sizes, different hop counts) do not alias.
    """
    from repro.autotune import build_autotuner
    from repro.core.module import NativeSpec

    def resolve(neighbor: int) -> ModuleSpec:
        p = dict(params or {})
        if store is not None:
            extra = dict(p.get("key_extra") or {})
            extra["neighbor"] = neighbor
            p["key_extra"] = extra
        return NativeSpec(build_autotuner(p, store=store))

    return resolve
