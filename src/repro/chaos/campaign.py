"""Seeded chaos campaigns: N randomized runs, invariants after each.

A campaign cycles its workloads and fault kinds across ``runs``
replayable runs.  Each run derives its own RNG substream (schedule
randomness) and its own cluster root seed from the campaign seed, so
any single run can be reproduced from the campaign seed plus its
index — which is exactly what a :func:`failure_bundle` captures when
an invariant breaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.chaos.generators import KINDS, generate_schedule, schedule_to_dict
from repro.chaos.invariants import RunReport, check_invariants
from repro.chaos.workloads import get_workload
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one campaign."""

    workloads: tuple = ("ext_stencil", "pallreduce")
    runs: int = 20
    seed: int = 0
    kinds: tuple = KINDS
    #: Virtual-time horizon fault windows land inside (seconds).
    horizon: float = 2.5e-3
    #: Per-run bound on measured virtual duration (None = unbounded).
    max_duration: Optional[float] = 1.0
    #: Module choice per edge ("native" or "persist").
    module: str = "native"
    #: Wrap every edge in the graceful-degradation ladder.
    ladder: bool = False

    def __post_init__(self):
        if self.runs < 1:
            raise ValueError(f"runs must be >= 1, got {self.runs}")
        if not self.workloads:
            raise ValueError("campaign needs at least one workload")
        if not self.kinds:
            raise ValueError("campaign needs at least one fault kind")


@dataclass
class RunOutcome:
    """One campaign run: its inputs, its report, its verdict."""

    index: int
    workload: str
    kind: str
    seed: int
    schedule: object
    report: RunReport
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CampaignReport:
    """Everything a finished campaign produced."""

    spec: CampaignSpec
    outcomes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def n_violations(self) -> int:
        return sum(len(o.violations) for o in self.outcomes)

    @property
    def kinds_run(self) -> set:
        return {o.kind for o in self.outcomes}

    def failures(self) -> list:
        return [o for o in self.outcomes if not o.ok]

    def counter_totals(self, prefixes=("chaos.", "ib.", "fault.",
                                       "mpi.")) -> dict:
        """Summed fabric counters across every run, filtered by prefix."""
        totals: dict[str, int] = {}
        for outcome in self.outcomes:
            for name, value in outcome.report.counters.items():
                if any(name.startswith(p) for p in prefixes):
                    totals[name] = totals.get(name, 0) + value
        return dict(sorted(totals.items()))


def failure_bundle(outcome: RunOutcome) -> dict:
    """A JSON-safe repro bundle: seed + schedule + counters + verdict."""
    return {
        "index": outcome.index,
        "workload": outcome.workload,
        "kind": outcome.kind,
        "seed": outcome.seed,
        "schedule": schedule_to_dict(outcome.schedule),
        "violations": list(outcome.violations),
        "completed": outcome.report.completed,
        "duration": outcome.report.duration,
        "integrity_failures": outcome.report.integrity_failures,
        "counters": dict(outcome.report.counters),
        "leaks": list(outcome.report.leaks),
        "meta": dict(outcome.report.meta),
    }


def run_campaign(spec: CampaignSpec,
                 progress: Optional[Callable[[str], None]] = None,
                 ) -> CampaignReport:
    """Execute the campaign; never raises on a failing run."""
    rngs = RngStreams(spec.seed)
    report = CampaignReport(spec=spec)
    for i in range(spec.runs):
        name = spec.workloads[i % len(spec.workloads)]
        kind = spec.kinds[i % len(spec.kinds)]
        info = get_workload(name)
        rng = rngs.stream(f"chaos.{name}.run{i}")
        schedule = generate_schedule(kind, rng, n_nodes=info.n_nodes,
                                     horizon=spec.horizon)
        run_seed = int(rng.integers(1, 1 << 31))
        try:
            run_report = info.fn(schedule, run_seed, module=spec.module,
                                 ladder=spec.ladder)
        except Exception as exc:
            # A raised error is itself an invariant violation (runs on
            # a reconnecting fabric must degrade, not abort); capture
            # it structurally so the bundle explains the abort.
            run_report = RunReport(
                workload=name, completed=False,
                meta={"error": f"{type(exc).__name__}: {exc}",
                      "context": dict(getattr(exc, "context", {}) or {})})
        violations = check_invariants(run_report,
                                      max_duration=spec.max_duration)
        outcome = RunOutcome(index=i, workload=name, kind=kind,
                             seed=run_seed, schedule=schedule,
                             report=run_report, violations=violations)
        report.outcomes.append(outcome)
        if progress:
            verdict = "ok" if outcome.ok else "VIOLATION"
            progress(f"run {i + 1}/{spec.runs}: {name} [{kind}] "
                     f"seed={run_seed} {verdict}")
    return report
