"""Chaos campaigns: property-based fault injection with invariants.

The chaos layer closes the robustness loop the fault model opened:

* :mod:`repro.chaos.generators` — seeded, replayable randomized
  :class:`~repro.faults.FaultSchedule` generators (flap storms,
  correlated rail failures, RNR bursts, latency-spike trains);
* :mod:`repro.chaos.workloads` — registered real workloads (halo
  exchange, tree allreduce/broadcast) run with backed buffers and
  per-iteration byte verification;
* :mod:`repro.chaos.invariants` — the post-run checks every run must
  pass: completion, byte integrity, exactly-once accounting, no
  leaked transport state, bounded virtual time;
* :mod:`repro.chaos.campaign` — N-run campaigns cycling workloads and
  kinds, with a JSON-safe failure-repro bundle per violating run;
* :mod:`repro.chaos.report` — the ``repro-bench chaos`` summary table.

See ``docs/FAULTS.md`` for the campaign model and the degradation
ladder the campaigns exercise.
"""

from repro.chaos.campaign import (
    CampaignReport,
    CampaignSpec,
    RunOutcome,
    failure_bundle,
    run_campaign,
)
from repro.chaos.generators import (
    KINDS,
    generate_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.chaos.invariants import RunReport, check_invariants
from repro.chaos.report import format_campaign
from repro.chaos.workloads import (
    chaos_config,
    collect_leaks,
    get_workload,
    resolve_module,
    workload,
    workload_names,
)

__all__ = [
    "KINDS",
    "CampaignReport",
    "CampaignSpec",
    "RunOutcome",
    "RunReport",
    "chaos_config",
    "check_invariants",
    "collect_leaks",
    "failure_bundle",
    "format_campaign",
    "generate_schedule",
    "get_workload",
    "resolve_module",
    "run_campaign",
    "schedule_from_dict",
    "schedule_to_dict",
    "workload",
    "workload_names",
]
