"""Plain-text campaign reports (same table idiom as ``repro.bench``)."""

from __future__ import annotations

from repro.chaos.campaign import CampaignReport


def format_campaign(report: CampaignReport) -> str:
    """Summarize a campaign: per-run verdicts plus counter totals."""
    from repro.bench.reporting import format_table

    spec = report.spec
    lines = [
        f"chaos campaign: {spec.runs} runs, seed {spec.seed}, "
        f"workloads {', '.join(spec.workloads)}"
        + (", ladder on" if spec.ladder else ""),
        f"kinds covered: {', '.join(sorted(report.kinds_run))}",
    ]
    rows = []
    for o in report.outcomes:
        c = o.report.counters
        rows.append([
            o.index, o.workload, o.kind, o.seed,
            f"{o.report.duration * 1e3:.2f}ms" if o.report.completed
            else "-",
            c.get("ib.retry_exhausted", 0),
            c.get("ib.reconnects", 0),
            c.get("chaos.ladder_demotions", 0),
            "ok" if o.ok else "; ".join(o.violations),
        ])
    lines.append(format_table(
        ["run", "workload", "kind", "seed", "time",
         "retry_exh", "reconn", "demote", "verdict"], rows))
    totals = report.counter_totals(prefixes=("chaos.",))
    if totals:
        lines.append("chaos counters: " + ", ".join(
            f"{name.removeprefix('chaos.')}={value}"
            for name, value in totals.items()))
    verdict = ("all invariants held" if report.ok else
               f"{report.n_violations} violation(s) in "
               f"{len(report.failures())} run(s)")
    lines.append(verdict)
    return "\n".join(lines)
