"""Registered chaos workloads: real communication patterns under faults.

A workload is a function ``fn(schedule, seed, **options) -> RunReport``
registered under a name together with the node count its fault
schedules should target.  Three ship by default:

* ``ext_stencil`` — the 2-D halo exchange from :mod:`repro.coll`
  (backed buffers, per-face integrity every iteration);
* ``pallreduce`` — the binomial-tree partitioned allreduce, verified
  against the wrapping uint8 sum of every rank's contribution;
* ``pbcast`` — the partitioned broadcast, verified against the root's
  fill pattern on every rank.

All three run on a *chaos recovery config*: short retry budgets and a
quick reconnect walk, so injected faults actually exhaust retries and
exercise replay/reconnect inside a few-millisecond virtual horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from repro.chaos.invariants import RunReport
from repro.config import NIAGARA, ClusterConfig
from repro.mem.buffer import PartitionedBuffer
from repro.mpi.cluster import Cluster
from repro.runtime import ComputePhase, SingleThreadDelay, WorkerTeam
from repro.sim.sync import SimBarrier
from repro.units import KiB, ms, us


def chaos_config(seed: int,
                 base: Optional[ClusterConfig] = None) -> ClusterConfig:
    """Recovery-friendly config with the run's root seed baked in."""
    base = base if base is not None else NIAGARA
    return base.with_changes(
        seed=int(seed),
        nic=replace(base.nic, retry_cnt=2, rnr_retry=2, qp_timeout=1),
        part=replace(base.part, reconnect_delay=us(200)),
    )


def resolve_module(module="native", ladder: bool = False):
    """Normalize a module choice name, optionally wrapping in a ladder."""
    if isinstance(module, str):
        if module == "persist":
            module = None
        elif module == "native":
            from repro.core import PLogGPAggregator
            from repro.model.tables import NIAGARA_LOGGP

            module = PLogGPAggregator(NIAGARA_LOGGP, delay=ms(1))
        else:
            raise ValueError(
                f"unknown module {module!r} (have: native, persist)")
    if ladder:
        from repro.coll import ladder_modules

        return ladder_modules(module)
    return module


# -- registry -----------------------------------------------------------


@dataclass(frozen=True)
class WorkloadInfo:
    """A registered workload plus the world its schedules target."""

    name: str
    n_nodes: int
    fn: Callable


_REGISTRY: dict[str, WorkloadInfo] = {}


def workload(name: str, n_nodes: int):
    """Register a chaos workload under ``name``."""

    def deco(fn):
        _REGISTRY[name] = WorkloadInfo(name=name, n_nodes=n_nodes, fn=fn)
        return fn

    return deco


def workload_names() -> list[str]:
    return sorted(_REGISTRY)


def get_workload(name: str) -> WorkloadInfo:
    info = _REGISTRY.get(name)
    if info is None:
        raise ValueError(f"unknown workload {name!r} "
                         f"(have: {', '.join(workload_names())})")
    return info


# -- leak sweeps --------------------------------------------------------


def collect_leaks(colls) -> list[str]:
    """Leftover transport state after the last round (should be empty)."""
    leaks: list[str] = []
    seen: set[int] = set()
    for coll in colls:
        for req in list(coll.sends.values()) + list(coll.recvs.values()):
            module = req.module
            if module is None or id(module) in seen:
                continue
            seen.add(id(module))
            edge = f"edge {req.process.rank}<->{req.peer}"
            tracker = getattr(module, "_tracker", None)
            if tracker is not None:
                if tracker.replay:
                    leaks.append(f"{edge}: {len(tracker.replay)} "
                                 "unreplayed WR runs")
                if tracker._inflight:
                    leaks.append(f"{edge}: {len(tracker._inflight)} "
                                 "tracked WRs never completed")
            credit = getattr(module, "_credit", None)
            if credit is not None and credit.deferred:
                leaks.append(f"{edge}: {len(credit.deferred)} partitions "
                             "stuck behind round credit")
            if getattr(module, "blocks_completion", False):
                leaks.append(f"{edge}: rescue partitions still in flight")
    return leaks


# -- ext_stencil --------------------------------------------------------


@workload("ext_stencil", n_nodes=4)
def run_ext_stencil(schedule, seed, module="native", ladder=False,
                    config=None, iterations=4, warmup=1) -> RunReport:
    """The repro.coll halo exchange, backed, with per-face integrity."""
    from repro.coll import run_stencil

    res = run_stencil(
        module=resolve_module(module, ladder),
        grid=(2, 2), n_threads=2, n_partitions=4, face_bytes=8 * KiB,
        compute=2e-4, noise_fraction=0.01,
        iterations=iterations, warmup=warmup,
        config=chaos_config(seed, config), faults=schedule, backed=True)
    completed = bool(res.times) and all(t > 0 for t in res.times)
    return RunReport(
        workload="ext_stencil", completed=completed,
        duration=float(sum(res.times)) if completed else 0.0,
        integrity_failures=res.integrity_failures, counters=res.counters,
        meta={"grid": "2x2", "iterations": iterations})


# -- tree collectives ---------------------------------------------------


def _fill_seed(it: int, rank: int, world: int) -> int:
    return ((it * world + rank) * 2654435761) % (1 << 31)


def _tree_driver(name, init, world, schedule, seed, module, ladder,
                 config, iterations, warmup, root_fills_only,
                 expected_for, n_partitions=4, partition_size=4 * KiB,
                 n_threads=2) -> RunReport:
    """Shared Start..Wait loop for the tree-collective workloads.

    ``init(proc, buf, module_for)`` builds the collective;
    ``expected_for(scratch, it, rank)`` returns the array ``buf`` must
    equal after the round (``scratch`` is a throwaway backed buffer for
    ``expected_pattern`` calls).
    """
    cfg = chaos_config(seed, config)
    cluster = Cluster(n_nodes=world, config=cfg)
    if schedule is not None:
        cluster.fabric.install_faults(schedule)
    procs = cluster.ranks(world)
    barrier = SimBarrier(cluster.env, parties=world)
    total = warmup + iterations
    per_thread = n_partitions // n_threads
    phase = ComputePhase(compute=2e-4, noise=SingleThreadDelay(0.01))
    module_for = resolve_module(module, ladder)
    scratch = PartitionedBuffer(n_partitions, partition_size, backed=True)
    start = [0.0] * total
    finish = np.zeros((total, world))
    state = {"integrity": 0, "done": 0, "colls": []}

    def rank_program(proc):
        rank = proc.rank
        buf = PartitionedBuffer(n_partitions, partition_size, backed=True)
        coll = init(proc, buf, module_for)
        state["colls"].append(coll)
        team = WorkerTeam(proc.env, n_threads,
                          cluster.rngs.stream(f"noise.rank{rank}"),
                          cores=cfg.host.cores_per_node)
        contributes = (rank == 0) if root_fills_only else True

        def body(tid):
            if contributes:
                for p in range(tid * per_thread, (tid + 1) * per_thread):
                    yield from proc.pcoll_pready(coll, p)
            else:
                yield 0.0

        for it in range(total):
            yield barrier.wait()
            if rank == 0:
                start[it] = proc.env.now
            if contributes:
                buf.fill_pattern(_fill_seed(it, rank, world))
            yield from proc.pcoll_start(coll)
            yield team.run_round(phase, lambda tid: body(tid))
            yield from proc.pcoll_wait(coll)
            if not np.array_equal(buf.data, expected_for(scratch, it, rank)):
                state["integrity"] += 1
            finish[it, rank] = proc.env.now
        state["done"] += 1

    for proc in procs:
        cluster.spawn(rank_program(proc))
    cluster.run()
    completed = state["done"] == world
    duration = 0.0
    if completed:
        duration = float(sum(finish[it].max() - start[it]
                             for it in range(warmup, total)))
    return RunReport(
        workload=name, completed=completed, duration=duration,
        integrity_failures=state["integrity"],
        counters=cluster.fabric.counters.as_dict(),
        leaks=collect_leaks(state["colls"]) if completed else [],
        meta={"world": world, "iterations": iterations})


@workload("pallreduce", n_nodes=5)
def run_chaos_pallreduce(schedule, seed, module="native", ladder=False,
                         config=None, iterations=4, warmup=1,
                         world=5) -> RunReport:
    """Tree allreduce, checked against the wrapping sum of all fills."""
    cache: dict[int, np.ndarray] = {}

    def expected_for(scratch, it, rank):
        got = cache.get(it)
        if got is None:
            got = np.zeros(scratch.nbytes, dtype=np.uint8)
            for r in range(world):
                got = got + scratch.expected_pattern(
                    0, scratch.nbytes, _fill_seed(it, r, world))
            cache[it] = got
        return got

    return _tree_driver(
        "pallreduce",
        lambda proc, buf, m: proc.pallreduce_init(buf, world, module_for=m),
        world, schedule, seed, module, ladder, config, iterations, warmup,
        root_fills_only=False, expected_for=expected_for)


@workload("fleet", n_nodes=8)
def run_chaos_fleet(schedule, seed, module="native", ladder=False,
                    config=None, iterations=4, warmup=1) -> RunReport:
    """Two pair tenants sharing a spine link that flaps mid-campaign.

    Thin delegator; the driver and its tenant-isolation invariants live
    in :mod:`repro.fleet.chaos` (imported lazily to keep the chaos
    registry import-light).
    """
    from repro.fleet.chaos import run_fleet_workload

    return run_fleet_workload(schedule, seed, module=module, ladder=ladder,
                              config=config, iterations=iterations,
                              warmup=warmup)


@workload("pbcast", n_nodes=5)
def run_chaos_pbcast(schedule, seed, module="native", ladder=False,
                     config=None, iterations=4, warmup=1,
                     world=5) -> RunReport:
    """Tree broadcast, every rank checked against the root's pattern."""

    def expected_for(scratch, it, rank):
        return scratch.expected_pattern(
            0, scratch.nbytes, _fill_seed(it, 0, world))

    return _tree_driver(
        "pbcast",
        lambda proc, buf, m: proc.pbcast_init(buf, world, module_for=m),
        world, schedule, seed, module, ladder, config, iterations, warmup,
        root_fills_only=True, expected_for=expected_for)
