"""Post-run invariant checks: what every chaos run must satisfy.

A workload returns a :class:`RunReport`; :func:`check_invariants`
turns it into a list of human-readable violations (empty = the run
held up).  The invariants are the paper-level correctness properties
the recovery machinery promises, not performance expectations:

* **completion** — the workload finished every iteration (a DES run
  that drains its event queue with programs still blocked shows up as
  ``completed=False``);
* **byte integrity** — every backed receive buffer held exactly the
  expected pattern after every iteration;
* **exactly-once accounting** — duplicates dropped by the replay
  dedup (plus rescue-path duplicates) never exceed the number of
  units that were ever re-sent; more duplicates than replays would
  mean the primary path double-delivered;
* **no leaks** — no replay-tracker entries, rescue partitions, or
  deferred credits left behind after the last round;
* **bounded time** — virtual completion time under an explicit bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunReport:
    """Everything one chaos run produced, ready for invariant checks."""

    workload: str = ""
    completed: bool = False
    #: Total measured virtual time (warmup excluded), seconds.
    duration: float = 0.0
    #: Iterations whose received bytes did not match the expectation.
    integrity_failures: int = 0
    #: Fabric counters at the end of the run.
    counters: dict = field(default_factory=dict)
    #: Human-readable descriptions of leaked resources (empty = clean).
    leaks: list = field(default_factory=list)
    #: Free-form extras (error strings, iteration counts, world size).
    meta: dict = field(default_factory=dict)


def check_invariants(report: RunReport,
                     max_duration: float = None) -> list[str]:
    """Violation strings for ``report`` (empty list = all invariants hold)."""
    violations = []
    if not report.completed:
        why = report.meta.get("error", "event queue drained with ranks "
                              "still blocked")
        violations.append(f"run did not complete: {why}")
    if report.integrity_failures:
        violations.append(
            f"byte integrity: {report.integrity_failures} iteration(s) "
            "received wrong bytes")
    c = report.counters
    duplicates = (c.get("mpi.duplicates_dropped", 0)
                  + c.get("chaos.rescue_duplicates", 0))
    resends = (c.get("mpi.replayed_wrs", 0)
               + c.get("mpi.read_replays", 0)
               + c.get("mpi.p2p_failures", 0)
               + c.get("chaos.rescued_partitions", 0))
    if duplicates > resends:
        violations.append(
            f"exactly-once accounting: {duplicates} duplicates dropped "
            f"but only {resends} units were ever re-sent")
    for leak in report.leaks:
        violations.append(f"leak: {leak}")
    if (max_duration is not None and report.completed
            and report.duration > max_duration):
        violations.append(
            f"bounded time: run took {report.duration:.6f}s virtual "
            f"(> {max_duration:.6f}s)")
    return violations
