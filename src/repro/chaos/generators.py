"""Property-based fault-schedule generators for chaos campaigns.

Each generator is a pure function of a named RNG substream: the same
seed always yields the same :class:`~repro.faults.FaultSchedule`, so
every campaign run is replayable from its ``(kind, seed)`` pair alone.
The four kinds stress different recovery machinery:

* ``flap_storm`` — several independent link flaps scattered across the
  fabric (retry exhaustion + reconnect walks on unrelated edges);
* ``rail_failure`` — every link of one node goes down at once (the
  correlated failure that hits a whole rank's QPs simultaneously);
* ``rnr_burst`` — clustered receiver-not-ready windows (RNR NAK
  backoff, and RNR retry exhaustion where windows outlast the budget);
* ``latency_train`` — a train of latency spikes on one directed link
  (ACK-timeout retransmits without any actual loss).

All windows are finite and land inside the ``horizon``, so a schedule
can always be outlived by a workload that keeps making progress.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from repro.faults.schedule import (
    ChunkFaults,
    FaultSchedule,
    LatencySpike,
    LinkFlap,
    NICStall,
    RNRWindow,
)

#: Fault-schedule kinds a campaign can draw from.
KINDS = ("flap_storm", "rail_failure", "rnr_burst", "latency_train")


def _window(rng: np.random.Generator, horizon: float,
            lo: float = 0.05, hi: float = 0.6,
            dlo: float = 0.02, dhi: float = 0.10) -> tuple[float, float]:
    """A (start, duration) pair, as fractions of the horizon."""
    start = float(rng.uniform(lo, hi) * horizon)
    duration = float(rng.uniform(dlo, dhi) * horizon)
    return start, duration


def _pair(rng: np.random.Generator, n_nodes: int) -> tuple[int, int]:
    a, b = rng.choice(n_nodes, size=2, replace=False)
    return int(a), int(b)


def _flap_storm(rng, n_nodes, horizon) -> FaultSchedule:
    schedule = FaultSchedule()
    for _ in range(int(rng.integers(2, 6))):
        a, b = _pair(rng, n_nodes)
        start, duration = _window(rng, horizon)
        schedule.link_flap(a, b, start, duration)
    return schedule


def _rail_failure(rng, n_nodes, horizon) -> FaultSchedule:
    schedule = FaultSchedule()
    node = int(rng.integers(n_nodes))
    start, duration = _window(rng, horizon, dlo=0.04, dhi=0.12)
    for other in range(n_nodes):
        if other != node:
            schedule.link_flap(node, other, start, duration)
    return schedule


def _rnr_burst(rng, n_nodes, horizon) -> FaultSchedule:
    schedule = FaultSchedule()
    for _ in range(int(rng.integers(2, 5))):
        node = int(rng.integers(n_nodes))
        start, duration = _window(rng, horizon, dlo=0.01, dhi=0.06)
        schedule.rnr_window(node, start, duration)
    return schedule


def _latency_train(rng, n_nodes, horizon) -> FaultSchedule:
    schedule = FaultSchedule()
    src, dst = _pair(rng, n_nodes)
    t = float(rng.uniform(0.05, 0.2) * horizon)
    for _ in range(int(rng.integers(3, 7))):
        duration = float(rng.uniform(0.02, 0.06) * horizon)
        extra = float(rng.uniform(5e-6, 50e-6))
        schedule.latency_spike(src, dst, t, duration, extra)
        t += duration + float(rng.uniform(0.01, 0.05) * horizon)
    return schedule


_GENERATORS = {
    "flap_storm": _flap_storm,
    "rail_failure": _rail_failure,
    "rnr_burst": _rnr_burst,
    "latency_train": _latency_train,
}


def generate_schedule(kind: str, rng: np.random.Generator, n_nodes: int,
                      horizon: float = 20e-3) -> FaultSchedule:
    """A randomized, replayable schedule of the given ``kind``."""
    if kind not in _GENERATORS:
        raise ValueError(
            f"unknown chaos kind {kind!r} (have: {', '.join(KINDS)})")
    if n_nodes < 2:
        raise ValueError(f"chaos needs >= 2 nodes, got {n_nodes}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    return _GENERATORS[kind](rng, n_nodes, horizon)


# -- serialization (failure-repro bundles) ------------------------------


def schedule_to_dict(schedule: FaultSchedule) -> dict:
    """JSON-safe form of a schedule (inverse of :func:`schedule_from_dict`)."""
    return {
        "flaps": [asdict(f) for f in schedule.flaps],
        "spikes": [asdict(s) for s in schedule.spikes],
        "stalls": [asdict(s) for s in schedule.stalls],
        "rnr_windows": [asdict(w) for w in schedule.rnr_windows],
        "chunk_faults": [asdict(c) for c in schedule.chunk_faults],
        "allow_reconnect": schedule.allow_reconnect,
    }


def schedule_from_dict(data: dict) -> FaultSchedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output."""
    return FaultSchedule(
        flaps=[LinkFlap(**e) for e in data.get("flaps", [])],
        spikes=[LatencySpike(**e) for e in data.get("spikes", [])],
        stalls=[NICStall(**e) for e in data.get("stalls", [])],
        rnr_windows=[RNRWindow(**e) for e in data.get("rnr_windows", [])],
        chunk_faults=[ChunkFaults(**e) for e in data.get("chunk_faults", [])],
        allow_reconnect=bool(data.get("allow_reconnect", True)),
    )
