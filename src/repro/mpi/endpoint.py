"""UCX-like transport endpoints: the baseline software path.

A :class:`Channel` is one *direction* of a process pair's connection: a
QP on each side, a receive ring for eager data, and a sender-side pump
process that serializes message injections (``msg_gap`` apart — the
LogGP ``g`` as seen through MPI, which is what aggregation amortizes).

Protocols, per UCX 1.12 on this class of hardware (Section V-B2):

* ``eager/bcopy`` (<= 1 KiB): staging copy at the sender, data lands in
  the receiver's ring, copied out at match time;
* ``eager/zcopy`` (<= 8 KiB): sent from the user buffer, still lands in
  the ring;
* ``rendezvous`` (larger): RTS header -> receiver matches and replies
  CTS -> sender RDMA-writes straight into the posted receive buffer.
  Both handshake halves need the respective side's progress engine to
  run — the dependency that shapes the baseline's behaviour when
  threads are busy computing.

Wire headers: real UCX prepends a tag/length header to each message.
Here each message carries a 32-bit sequence number as RDMA immediate
data and the rest of the header rides out-of-band in the receiving
process's header table (its bytes are accounted by ``HEADER_BYTES``
added to the wire size).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.engine import Rail, RailPolicy, ReplayTracker, reconnect_walk, restock
from repro.errors import MPIError
from repro.ib.constants import ACCESS_LOCAL, ACCESS_REMOTE_WRITE, Opcode, QPState
from repro.ib.wr import SGE, RecvWR, SendWR
from repro.mem.buffer import Buffer
from repro.sim.resources import Store
from repro.units import KiB

if TYPE_CHECKING:
    from repro.mpi.process import MPIProcess

#: Bytes of tag/len header accounted on every wire message.
HEADER_BYTES = 32

#: Ring size per channel direction (eager messages only; rendezvous
#: bypasses the ring, so this never needs to cover large transfers).
RING_BYTES = 4 * 1024 * KiB

#: Receive-queue prestock per channel QP.  Replenished one-for-one as
#: messages are handled; 64 comfortably covers the sender's in-flight
#: budget (16 outstanding RDMA WRs plus pump/poller slack).
_RQ_PRESTOCK = 64

_seq_counter = itertools.count(1)
_wrid_counter = itertools.count(1)


class MsgKind(enum.Enum):
    EAGER = "eager"
    RNDV_RTS = "rndv-rts"
    RNDV_CTS = "rndv-cts"
    RNDV_DATA = "rndv-data"
    PART_DATA = "part-data"     # persist-module partition payload
    PART_RTS = "part-rts"       # persist-module rendezvous handshake
    PART_ATS = "part-ats"       # persist-module ack-to-sender after get


@dataclass
class Header:
    """Out-of-band message header (bytes accounted as HEADER_BYTES)."""

    kind: MsgKind
    seq: int
    sender: int
    tag: int = 0
    nbytes: int = 0
    #: Free-form reference: request ids, partition ranges, CTS targets.
    ref: Any = None
    #: Ring offset for eager payloads.
    ring_offset: int = 0


@dataclass
class _PumpItem:
    """One message handed to the channel pump."""

    header: Header
    #: (addr, length, lkey) gather source, or None for header-only.
    gather: Optional[tuple[int, int, int]]
    #: RDMA target (addr, rkey); for eager, filled by the pump (ring).
    target: Optional[tuple[int, int]]
    #: CPU cost charged by the pump before posting.
    cpu_cost: float
    #: Minimum spacing to the next injection (protocol-tier gap).
    gap: float = 0.0
    #: Callback fired with the WC when the send completes (acked).
    on_sent: Any = None
    #: Callback fired with the WC if the send fails terminally (retry
    #: exhaustion or flush); None means the channel resubmits the item
    #: itself after reconnecting.
    on_error: Any = None
    #: True for eager payloads that go through the ring.
    to_ring: bool = False


class Channel:
    """One direction of a connected process pair (src sends to dst)."""

    def __init__(self, src: "MPIProcess", dst: "MPIProcess"):
        from repro.ib import verbs

        self.src = src
        self.dst = dst
        self.env = src.env
        cfg = src.config
        # Lanes: QP pairs; control and eager traffic keeps ordering on
        # lane 0, bulk (rendezvous-sized) payloads stripe round-robin
        # so large transfers reach full line rate (UCX multi-path).
        self.src_qps = []
        self.dst_qps = []
        # +1: a dedicated control lane so RTS/CTS headers never queue
        # behind bulk data on the same QP (they still share the wire,
        # at chunk granularity).
        for _ in range(cfg.ucx.n_lanes + 1):
            sqp = src.ib.create_qp(src.p2p_pd, src.p2p_cq, src.p2p_cq)
            dqp = dst.ib.create_qp(dst.p2p_pd, dst.p2p_cq, dst.p2p_cq)
            verbs.connect_qps(sqp, dqp)
            # Pre-stock the destination RQ; replenished one-for-one per
            # inbound message by the p2p poller, so a modest depth
            # (matching the 16-outstanding sender budget plus slack)
            # suffices and channel setup stays cheap.
            for _ in range(_RQ_PRESTOCK):
                dqp.post_recv(RecvWR(wr_id=0))
            self.src_qps.append(sqp)
            self.dst_qps.append(dqp)
        self.ctrl_qp = self.src_qps[-1]
        #: Bulk (rendezvous-sized) payloads stripe round-robin over the
        #: data lanes (UCX multi-path).
        self.bulk_rail = Rail(self.src_qps[: cfg.ucx.n_lanes],
                              RailPolicy.ROUND_ROBIN)
        # Receive ring at the destination for eager payloads.
        self.ring = Buffer(RING_BYTES, backed=cfg.real_buffers)
        self.ring_mr = dst.p2p_pd.reg_mr(
            self.ring, ACCESS_LOCAL | ACCESS_REMOTE_WRITE)
        self._ring_head = 0
        self._pump_queue = Store(self.env)
        self.env.process(self._pump())
        # Fault recovery: dead items queue on the tracker and resubmit
        # through the pump after the reconnect walk.
        self._tracker = ReplayTracker(
            self.env, src.cluster.fabric, cfg.part.reconnect_delay,
            counter="mpi.p2p_resubmits")
        self._tracker.bind(
            recover_walk=self._recover_walk,
            restock=lambda: None,       # folded into the lane walk
            on_dropped=lambda item: (item,),
            can_replay=lambda item: True,  # the pump re-checks QP state
            replay_unit=self._resubmit)
        # statistics
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- sender API ---------------------------------------------------------

    def submit(self, item: _PumpItem) -> None:
        """Hand a message to the pump (non-blocking, FIFO)."""
        self._pump_queue.put(item)

    def alloc_ring(self, nbytes: int) -> int:
        """Allocate ring space for an eager payload (sender-owned head)."""
        if nbytes > RING_BYTES:
            raise MPIError(f"eager message of {nbytes}B exceeds ring")
        if self._ring_head + nbytes > RING_BYTES:
            self._ring_head = 0
        offset = self._ring_head
        self._ring_head += nbytes
        return offset

    # -- the pump -------------------------------------------------------------

    def _pump(self):
        """Serialize sends: protocol CPU, injection gap, flow control."""
        env = self.env
        ucx = self.src.config.ucx
        next_send = 0.0
        while True:
            item: _PumpItem = yield self._pump_queue.get()
            if item.cpu_cost > 0:
                yield item.cpu_cost
            if env.now < next_send:
                yield next_send - env.now
            header = item.header
            # Bulk payloads stripe across data lanes; eager traffic
            # stays ordered on lane 0; header-only control messages get
            # their own lane so they never wait behind bulk chunks.
            if item.gather is None:
                qp = self.ctrl_qp
            elif header.nbytes > ucx.eager_zcopy_max:
                qp = self.bulk_rail.select()
            else:
                qp = self.src_qps[0]
            # Software flow control against the 16-outstanding limit.
            while not qp.has_rdma_slot():
                yield qp.wait_rdma_slot()
            if qp.state is not QPState.RTS:
                # Channel failure mid-stream (wait_rdma_slot fires
                # immediately on an ERROR QP): park the item for the
                # reconnect walk instead of posting into a dead QP.
                self.note_failure(item)
                continue
            if item.to_ring:
                offset = self.alloc_ring(max(1, header.nbytes))
                header.ring_offset = offset
                target = (self.ring_mr.addr + offset, self.ring_mr.rkey)
            else:
                target = item.target if item.target else (0, 0)
            sg = [SGE(*item.gather)] if item.gather else [SGE(0, 0, 0)]
            wr_id = next(_wrid_counter)
            self.dst._inbound_headers[header.seq] = header
            if item.on_sent is not None:
                self.src.router.on_success(wr_id, item.on_sent)
            # Failure routing: entries live from post to ACK so a WR
            # that dies — with an error CQE or with its QP — can be
            # traced back to its message and replayed exactly once.
            self.src.router.on_failure(wr_id, (self, item, qp))
            wire_bytes = (header.nbytes if item.gather else 0) + HEADER_BYTES
            qp.post_send(SendWR(
                wr_id=wr_id,
                opcode=Opcode.RDMA_WRITE_WITH_IMM,
                sg_list=sg,
                remote_addr=target[0],
                rkey=target[1],
                imm_data=header.seq & 0xFFFFFFFF,
                signaled=True,
            ))
            # Header bytes ride in front of the payload on the wire;
            # their serialization is folded into the injection gap.
            next_send = env.now + max(item.gap,
                                      HEADER_BYTES / self.src.config.nic.line_rate)
            self.messages_sent += 1
            self.bytes_sent += wire_bytes

    # -- fault recovery -----------------------------------------------------

    def note_failure(self, item: _PumpItem) -> None:
        """Park a dead message and kick the reconnect process once."""
        self._tracker.queue([item])
        self._tracker.kick()

    def _recover_walk(self):
        """Walk failed lanes back to RTS; sweep their vanished WRs.

        The reconnect delay (charged by the tracker) is far longer than
        the ACK window, so by the sweep every in-flight completion has
        landed: whatever is still registered against a failed lane died
        without a CQE and queues for resubmission here, exactly once.
        The walk, sweep, and resubmits are all yield-free, so the pump
        cannot interleave and double-post.
        """
        fixed = reconnect_walk(
            ((sqp, sqp, dqp) for sqp, dqp in zip(self.src_qps, self.dst_qps)),
            on_fixed=lambda _tok, _sqp, dqp: restock(dqp, _RQ_PRESTOCK))
        for entry in self.src.router.sweep_failures(
                lambda e: e[0] is self and e[2] in fixed):
            self._tracker.queue([entry[1]])
        return fixed

    def _resubmit(self, item: _PumpItem):
        self.submit(item)
        return
        yield  # pragma: no cover - generator protocol


def make_seq() -> int:
    return next(_seq_counter)


def ring_payload(channel: Channel, header: Header) -> Optional[np.ndarray]:
    """Read an eager payload out of the channel ring (None if phantom)."""
    return channel.ring.read(header.ring_offset, header.nbytes)
