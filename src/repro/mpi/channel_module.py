"""The last-resort ``channels`` module: shared p2p path, nothing else.

The bottom rung of the graceful-degradation ladder
(:mod:`repro.mpi.ladder`).  Where ``part_persist`` still provisions
dedicated rendezvous QPs for receiver-driven gets, this module creates
**no new IB resources at all**: every partition travels as one
``PART_DATA`` write over the process pair's shared p2p
:class:`~repro.mpi.endpoint.Channel`, whose pump, flow control, and
replay tracker already exist and already survive reconnects.

That makes it the maximally-degraded transport — slowest (one
serialized channel message per partition, no rendezvous offload), but
with the smallest possible surface exposed to a failing edge: an edge
whose dedicated QPs keep dying can always fall back to here, because
"here" needs nothing beyond what plain eager p2p needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine import CreditManager
from repro.mpi.endpoint import Header, MsgKind, _PumpItem, make_seq
from repro.mpi.modules import ModuleSpec, PartitionedModule
from repro.sim.sync import SimLock

if TYPE_CHECKING:
    from repro.mpi.process import MPIProcess


class ChannelModule(PartitionedModule):
    """Per-partition partitioned transport over the shared p2p channel."""

    def __init__(self, cluster, send_req, recv_req):
        super().__init__(cluster, send_req, recv_req)
        self.sender: "MPIProcess" = send_req.process
        self.receiver: "MPIProcess" = recv_req.process
        self.channel = None
        self.send_mr = None
        self.recv_mr = None
        #: Per-partition posts serialize here, like the persist module's
        #: UCX worker lock (same software path, same contention).
        self.worker_lock = SimLock(self.env)
        self._credit = CreditManager(self.env, self._drain_deferred)
        self._acked = 0
        self._readied = 0

    # -- setup ------------------------------------------------------------

    def setup(self, send_req, recv_req) -> None:
        self.channel = self.sender.channel_to(self.receiver.rank)
        self.send_mr = self.sender._register(send_req.buf)
        self.recv_mr = self.receiver._register(recv_req.buf,
                                               remote_write=True)

    # -- round management -------------------------------------------------

    def start_send(self, req):
        self._acked = 0
        self._readied = 0
        return
        yield  # pragma: no cover - generator protocol

    def start_recv(self, req):
        flight = self.cluster.fabric.latency(
            self.receiver.node_id, self.sender.node_id)
        self._credit.grant(req.round, flight)
        return
        yield  # pragma: no cover - generator protocol

    def _drain_deferred(self):
        while self._credit.deferred:
            self._submit(self._credit.deferred.pop(0))
            yield 0.0

    # -- sender path ------------------------------------------------------

    def pready(self, req, partition: int):
        sender = self.sender
        ucx = sender.config.ucx
        proto = ucx.protocol_for(req.partition_size)
        yield self.worker_lock.acquire()
        try:
            yield sender.software_cost(
                proto.t_send + sender.config.host.t_atomic)
            self._readied += 1
            if not self._credit.ready(req.round):
                self._credit.defer(partition)
            else:
                self._submit(partition)
        finally:
            self.worker_lock.release()
        yield from sender.engine.progress_once()

    def _submit(self, partition: int) -> None:
        """One PART_DATA channel write straight into the receive buffer."""
        req = self.send_req
        size = req.partition_size
        offset = req.buf.partition_offset(partition)
        proto = self.sender.config.ucx.protocol_for(size)
        header = Header(
            kind=MsgKind.PART_DATA, seq=make_seq(),
            sender=self.sender.rank, tag=req.tag, nbytes=size,
            ref=(self, partition))
        self.channel.submit(_PumpItem(
            header=header,
            gather=(self.send_mr.addr + offset, size, self.send_mr.lkey),
            target=(self.recv_mr.addr + offset, self.recv_mr.rkey),
            cpu_cost=0.0,
            gap=proto.gap,
            on_sent=self._on_partition_acked))

    def _on_partition_acked(self, wc=None) -> None:
        if self._retired_for(self.send_req):
            return  # stale ack into a round a newer rung owns
        self._acked += 1
        if (self._acked == self.send_req.n_partitions
                and self._readied == self.send_req.n_partitions):
            self.send_req.mark_complete()

    # -- receiver path ----------------------------------------------------

    def handle_inbound(self, process: "MPIProcess", header: Header, payload):
        ucx = process.config.ucx
        _module, partition = header.ref
        proto = ucx.protocol_for(header.nbytes)
        yield proto.t_recv
        self.recv_req.mark_arrived(partition, 1)
        if self.recv_req.all_arrived:
            self.recv_req.mark_complete()


class ChannelSpec(ModuleSpec):
    """Spec for the channels module (pass to both init calls)."""

    name = "channels"

    def create(self, cluster, send_req, recv_req):
        return ChannelModule(cluster, send_req, recv_req)
