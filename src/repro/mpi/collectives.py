"""Collective operations built on the point-to-point layer.

Enough of the collective surface for applications and benchmarks to be
self-contained on the simulated MPI: a dissemination barrier, binomial
broadcast and reduce, and allreduce (reduce + bcast).  All are
generator functions called symmetrically from every rank's program::

    yield from barrier(proc, world)
    yield from bcast(proc, world, array, root=0)
    total = yield from allreduce(proc, world, array, op=np.add)

Tags are namespaced per (collective, epoch, round) so concurrent and
repeated collectives never cross-match; the matching layer accepts any
hashable tag.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import MPIError
from repro.mem.buffer import Buffer
from repro.mpi.process import MPIProcess

_TOKEN_BYTES = 8


def barrier(proc: MPIProcess, world: int):
    """Dissemination barrier across ranks [0, world); yields.

    log2(world) rounds; in round k each rank sends a token to
    ``(rank + 2^k) % world`` and receives from ``(rank - 2^k) % world``.
    """
    if world < 1:
        raise MPIError(f"world must be >= 1, got {world}")
    if world == 1:
        return
        yield  # pragma: no cover
    epoch = proc.next_coll_epoch("barrier")
    token = Buffer(_TOKEN_BYTES, backed=False)
    sink = Buffer(_TOKEN_BYTES, backed=False)
    rounds = math.ceil(math.log2(world))
    for k in range(rounds):
        dist = 1 << k
        to = (proc.rank + dist) % world
        frm = (proc.rank - dist) % world
        tag = ("coll.barrier", epoch, k)
        send_req = proc.isend(token, dest=to, tag=tag)
        recv_req = proc.irecv(sink, source=frm, tag=tag)
        yield from proc.wait_all([send_req, recv_req])


def _binomial_children(rank: int, root: int, world: int) -> list[int]:
    """Children of ``rank`` in a binomial tree rooted at ``root``."""
    virtual = (rank - root) % world
    children = []
    mask = 1
    while mask < world:
        if virtual & (mask - 1) == 0 and virtual | mask < world and not virtual & mask:
            children.append(((virtual | mask) + root) % world)
        mask <<= 1
    return children


def _binomial_parent(rank: int, root: int, world: int) -> Optional[int]:
    virtual = (rank - root) % world
    if virtual == 0:
        return None
    # Clear the lowest set bit.
    parent_virtual = virtual & (virtual - 1)
    return (parent_virtual + root) % world


def bcast(proc: MPIProcess, world: int, data: np.ndarray, root: int = 0):
    """Binomial-tree broadcast of ``data`` (modified in place); yields."""
    if not (0 <= root < world):
        raise MPIError(f"root {root} outside world of {world}")
    if world == 1:
        return data
        yield  # pragma: no cover
    epoch = proc.next_coll_epoch("bcast")
    nbytes = data.nbytes
    buf = Buffer(max(nbytes, 1))
    parent = _binomial_parent(proc.rank, root, world)
    if parent is None:
        buf.data[:nbytes] = data.view(np.uint8).reshape(-1)
    else:
        yield from proc.recv(buf, source=parent,
                             tag=("coll.bcast", epoch, proc.rank))
        data.view(np.uint8).reshape(-1)[:] = buf.data[:nbytes]
    for child in _binomial_children(proc.rank, root, world):
        yield from proc.send(buf, dest=child,
                             tag=("coll.bcast", epoch, child))
    return data


def reduce(proc: MPIProcess, world: int, data: np.ndarray,
           op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
           root: int = 0):
    """Binomial-tree reduction toward ``root``; yields.

    Returns the reduced array on the root, and the partial (its own
    contribution already consumed) elsewhere — matching MPI's contract
    that only the root's recvbuf is significant.
    """
    if not (0 <= root < world):
        raise MPIError(f"root {root} outside world of {world}")
    acc = data.copy()
    if world == 1:
        return acc
        yield  # pragma: no cover
    epoch = proc.next_coll_epoch("reduce")
    nbytes = data.nbytes
    staging = Buffer(max(nbytes, 1))
    # Children send up in reverse binomial order.
    for child in reversed(_binomial_children(proc.rank, root, world)):
        yield from proc.recv(staging, source=child,
                             tag=("coll.reduce", epoch, child))
        incoming = np.frombuffer(
            staging.data[:nbytes].tobytes(), dtype=data.dtype
        ).reshape(data.shape)
        acc = op(acc, incoming)
    parent = _binomial_parent(proc.rank, root, world)
    if parent is not None:
        out = Buffer(max(nbytes, 1))
        out.data[:nbytes] = acc.view(np.uint8).reshape(-1)
        yield from proc.send(out, dest=parent,
                             tag=("coll.reduce", epoch, proc.rank))
    return acc


def allreduce(proc: MPIProcess, world: int, data: np.ndarray,
              op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add):
    """Reduce to rank 0 then broadcast; yields, returns the result."""
    acc = yield from reduce(proc, world, data, op=op, root=0)
    if proc.rank != 0:
        acc = np.zeros_like(data)
    result = yield from bcast(proc, world, acc, root=0)
    return result
