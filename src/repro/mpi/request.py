"""Request objects: plain point-to-point and partitioned."""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import PartitionError, RequestError
from repro.mem.buffer import Buffer, PartitionedBuffer

if TYPE_CHECKING:
    from repro.mpi.process import MPIProcess


_request_ids = itertools.count(1)


class Request:
    """Base MPI request: a completion flag owned by a process."""

    def __init__(self, process: "MPIProcess"):
        self.process = process
        self.request_id = next(_request_ids)
        self._complete = False
        #: Virtual time of completion (for measurements).
        self.completed_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self._complete

    def mark_complete(self) -> None:
        if not self._complete:
            self._complete = True
            self.completed_at = self.process.env.now

    def __repr__(self) -> str:
        state = "done" if self._complete else "pending"
        return f"<{type(self).__name__} #{self.request_id} {state}>"


class P2PRequest(Request):
    """A non-blocking send or receive in flight."""

    def __init__(self, process: "MPIProcess", kind: str, buf: Buffer,
                 nbytes: int, peer: int, tag: int):
        super().__init__(process)
        if kind not in ("send", "recv"):
            raise RequestError(f"bad p2p request kind: {kind}")
        self.kind = kind
        self.buf = buf
        self.nbytes = nbytes
        self.peer = peer
        self.tag = tag
        #: For receives: payload staged from an unexpected message.
        self.staged: Optional[np.ndarray] = None


class PersistentP2PRequest(Request):
    """A classic persistent point-to-point request (``MPI_Send_init`` /
    ``MPI_Recv_init``).

    Holds the communication arguments; each ``MPI_Start`` launches a
    fresh internal transfer, and completion/``MPI_Wait`` applies to the
    current round.  Partitioned communication historically grew out of
    this API (the paper's ref. [26]).
    """

    def __init__(self, process: "MPIProcess", kind: str, buf: Buffer,
                 nbytes: int, peer: int, tag: int, offset: int = 0):
        super().__init__(process)
        if kind not in ("send", "recv"):
            raise RequestError(f"bad persistent request kind: {kind}")
        self.kind = kind
        self.buf = buf
        self.nbytes = nbytes
        self.peer = peer
        self.tag = tag
        self.offset = offset
        self._inner: Optional[P2PRequest] = None
        self.rounds_started = 0

    @property
    def active(self) -> bool:
        return self._inner is not None and not self._inner.done

    @property
    def done(self) -> bool:
        # Never started -> trivially complete (MPI semantics: Wait on an
        # inactive persistent request returns immediately).
        return self._inner is None or self._inner.done

    def start(self) -> None:
        """(Re)activate: launch this round's transfer (non-blocking)."""
        if self.active:
            raise RequestError("Start on an active persistent request")
        if self.kind == "send":
            self._inner = self.process.isend(
                self.buf, dest=self.peer, tag=self.tag,
                nbytes=self.nbytes, offset=self.offset)
        else:
            self._inner = self.process.irecv(
                self.buf, source=self.peer, tag=self.tag,
                nbytes=self.nbytes, offset=self.offset)
        self.rounds_started += 1

    @property
    def completed_at(self):
        return self._inner.completed_at if self._inner else None

    @completed_at.setter
    def completed_at(self, value):
        pass  # completion time lives on the inner request


class PartitionedState(enum.Enum):
    """Lifecycle of a partitioned request."""

    SETUP = "setup"        # init called, module setup in flight
    INACTIVE = "inactive"  # matched and ready; not started
    ACTIVE = "active"      # between Start and completion
    COMPLETE = "complete"  # this round's transfer finished


class PartitionedRequest(Request):
    """Common state of Psend/Precv persistent requests."""

    def __init__(self, process: "MPIProcess", buf: PartitionedBuffer,
                 peer: int, tag: int, module_name: str):
        super().__init__(process)
        self.buf = buf
        self.peer = peer
        self.tag = tag
        self.module_name = module_name
        self.n_partitions = buf.n_partitions
        self.partition_size = buf.partition_size
        self.state = PartitionedState.SETUP
        #: Fires when module setup (QP exchange etc.) finished.
        self.ready_event = process.env.event()
        #: The transport module instance, set at match time.
        self.module = None
        #: Module-private per-request state.
        self.module_state: Optional[object] = None
        #: Round counter (increments on each Start).
        self.round = 0

    @property
    def total_bytes(self) -> int:
        return self.buf.nbytes

    def check_partition(self, index: int) -> None:
        if not (0 <= index < self.n_partitions):
            raise PartitionError(
                f"partition {index} outside [0, {self.n_partitions})")

    def require_active(self, what: str) -> None:
        if self.state is not PartitionedState.ACTIVE:
            raise RequestError(
                f"{what} on a request in state {self.state.value}")

    def mark_complete(self) -> None:
        # Persistent requests go COMPLETE, not terminal: Start re-arms.
        if not self._complete:
            self._complete = True
            self.completed_at = self.process.env.now
            self.state = PartitionedState.COMPLETE

    def rearm(self) -> None:
        """Reset completion for the next round (called by Start)."""
        self._complete = False
        self.completed_at = None
        self.state = PartitionedState.ACTIVE
        self.round += 1


class PsendRequest(PartitionedRequest):
    """Sender-side partitioned request."""

    kind = "send"

    def __init__(self, process, buf, dest: int, tag: int, module_name: str):
        super().__init__(process, buf, dest, tag, module_name)
        #: MPI_Pready call time per partition, for this round
        #: (profiling/benchmarks read these).
        self.pready_times: list[Optional[float]] = [None] * self.n_partitions

    def record_pready(self, index: int) -> None:
        self.pready_times[index] = self.process.env.now

    def reset_round_stats(self) -> None:
        self.pready_times = [None] * self.n_partitions


class PrecvRequest(PartitionedRequest):
    """Receiver-side partitioned request."""

    kind = "recv"

    def __init__(self, process, buf, source: int, tag: int, module_name: str):
        super().__init__(process, buf, source, tag, module_name)
        #: Arrival flags per user partition, this round.
        self.arrived = np.zeros(self.n_partitions, dtype=bool)
        #: Arrival times per user partition (measurements).
        self.arrival_times: list[Optional[float]] = [None] * self.n_partitions

    def mark_arrived(self, start: int, count: int) -> None:
        if start < 0 or count < 1 or start + count > self.n_partitions:
            raise PartitionError(
                f"arrival range [{start}, {start + count}) outside "
                f"[0, {self.n_partitions})")
        now = self.process.env.now
        self.arrived[start : start + count] = True
        for i in range(start, start + count):
            self.arrival_times[i] = now

    @property
    def all_arrived(self) -> bool:
        return bool(self.arrived.all())

    def reset_round_stats(self) -> None:
        self.arrived[:] = False
        self.arrival_times = [None] * self.n_partitions
