"""Simulated MPI runtime over the InfiniBand substrate.

Provides the subset of MPI the paper exercises:

* persistent **partitioned** point-to-point (``Psend_init`` /
  ``Precv_init`` / ``Start`` / ``Pready`` / ``Parrived`` / ``Test`` /
  ``Wait``) with pluggable transport modules — the baseline
  ``part_persist`` module over a UCX-like protocol stack, and the
  paper's native-verbs module (in :mod:`repro.core`);
* plain non-blocking point-to-point (``isend`` / ``irecv``) used by the
  Netgauge-style parameter measurement and the sweep baseline;
* a single-threaded progress engine with the try-lock discipline the
  paper describes for ``MPI_Parrived`` (Section IV-A).

Entry point: :class:`~repro.mpi.cluster.Cluster`.
"""

from repro.mpi.cluster import Cluster
from repro.mpi.process import MPIProcess
from repro.mpi.request import (
    Request,
    P2PRequest,
    PersistentP2PRequest,
    PartitionedRequest,
    PsendRequest,
    PrecvRequest,
)
from repro.engine.progress import ProgressEngine
from repro.mpi.collectives import allreduce, barrier, bcast, reduce

__all__ = [
    "Cluster",
    "MPIProcess",
    "Request",
    "P2PRequest",
    "PersistentP2PRequest",
    "PartitionedRequest",
    "PsendRequest",
    "PrecvRequest",
    "ProgressEngine",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
]
