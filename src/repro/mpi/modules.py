"""Partitioned transport module interface.

A *module* is the pluggable engine behind a matched Psend/Precv pair —
the analogue of an Open MPI MCA component.  Two implementations exist:

* :class:`repro.mpi.persist_module.PersistModule` — the baseline
  ``part_persist`` behaviour: one internal point-to-point message per
  user partition through the UCX-like stack;
* :class:`repro.core.module.NativeVerbsModule` — the paper's
  contribution: direct verbs with user-partition aggregation.

One module *instance* serves one matched request pair and is shared by
both processes (each side only touches its own half of the state).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.mpi.cluster import Cluster
    from repro.mpi.process import MPIProcess
    from repro.mpi.request import PrecvRequest, PsendRequest


class ModuleSpec(abc.ABC):
    """Factory passed to ``psend_init`` / ``precv_init``.

    Both sides must pass specs with the same ``name``; the sender's spec
    instantiates the module at match time.
    """

    name: str = ""

    @abc.abstractmethod
    def create(self, cluster: "Cluster", send_req: "PsendRequest",
               recv_req: "PrecvRequest"):
        """Build the module instance for a matched pair."""


class PartitionedModule(abc.ABC):
    """Runtime engine for one matched partitioned request pair."""

    def __init__(self, cluster: "Cluster", send_req: "PsendRequest",
                 recv_req: "PrecvRequest"):
        self.cluster = cluster
        self.send_req = send_req
        self.recv_req = recv_req
        self.env = cluster.env
        #: Set by :class:`repro.mpi.ladder.LadderModule` when this
        #: module runs as a ladder rung: failure events report to
        #: ``ladder.note_failure`` and completion defers to the
        #: ladder's rescue bookkeeping.  ``None`` on the normal path.
        self.ladder = None
        #: Last round this module owns, set when a ladder swaps it out.
        #: A retired rung keeps serving the in-flight round (the two
        #: sides reach the boundary at different times), then its
        #: completion hooks go inert once the request advances past it.
        self.retired_after = None

    def _retired_for(self, req) -> bool:
        """Whether this module no longer owns ``req``'s current round."""
        return (self.retired_after is not None
                and req.round > self.retired_after)

    @abc.abstractmethod
    def setup(self, send_req: "PsendRequest", recv_req: "PrecvRequest") -> None:
        """Synchronous resource creation, run after the async init delay."""

    @abc.abstractmethod
    def start_send(self, req: "PsendRequest"):
        """Re-arm sender state for a round; generator."""

    @abc.abstractmethod
    def start_recv(self, req: "PrecvRequest"):
        """Re-arm receiver state for a round; generator."""

    @abc.abstractmethod
    def pready(self, req: "PsendRequest", partition: int):
        """Handle ``MPI_Pready`` in the calling thread's context; generator."""

    def handle_inbound(self, process: "MPIProcess", header, payload):
        """Handle a module-specific p2p message (persist module only)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not use the p2p path")
        yield  # pragma: no cover - makes this a generator
