"""The per-edge graceful-degradation ladder (chaos tentpole).

A :class:`LadderModule` wraps an ordered list of transport rungs —
typically ``native_verbs`` → ``part_persist`` → ``channels`` — behind
the one-module-per-matched-pair interface, and moves the edge *down*
the list when its current transport keeps failing and back *up* after
a probation of clean rounds:

* every rung-level failure event (send-WR retry exhaustion, read-rail
  replay, watchdog deadline miss) feeds a per-edge
  :class:`~repro.engine.watchdog.CircuitBreaker`; ``threshold``
  consecutive events trip it and schedule a **demotion** one rung down
  at the next round boundary;
* a tripped *native* rung additionally gets a **mid-round takeover**:
  the rung's :class:`~repro.engine.replay.ReplayTracker` diverts every
  replay-bound unit to a per-partition rescue path over the shared p2p
  channel (the one transport that needs no dedicated QPs), so the
  in-flight round still completes instead of hammering a dead path;
* on a fallback rung the breaker runs HALF_OPEN:
  ``probation`` consecutive clean rounds re-close it, which schedules
  a **promotion** one rung up — a still-dead path fails probation and
  drops right back, so a permanently dead edge settles at the highest
  rung that works.

Rung swaps happen only at round boundaries (both sides' ``MPI_Start``
funnel through :meth:`LadderModule._sync_ladder`).  The two sides
reach a boundary at different times, so the retired rung is not torn
down: it keeps serving the round it still owns (``retired_after``),
and its completion hooks go inert only once each request advances
past that round — its CQs stay bound to the completion router, which
has no unbind, but the retired checks no-op.

Everything is visible: ``chaos.*`` counters for every transition,
``transitions`` for the full state-machine history, and ``rung_name``
/ ``level`` for the PMPI profiler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.engine import CircuitBreaker, EdgeWatchdog
from repro.ib.constants import QPState
from repro.mpi.endpoint import Header, MsgKind, _PumpItem, make_seq
from repro.mpi.modules import ModuleSpec, PartitionedModule

if TYPE_CHECKING:
    from repro.mpi.process import MPIProcess


class LadderModule(PartitionedModule):
    """Degradation-ladder wrapper around a stack of transport rungs."""

    def __init__(self, cluster, send_req, recv_req, rungs):
        super().__init__(cluster, send_req, recv_req)
        self.rungs = list(rungs)
        self.sender: "MPIProcess" = send_req.process
        self.receiver: "MPIProcess" = recv_req.process
        part = cluster.config.part
        self.breaker = CircuitBreaker(part.breaker_threshold,
                                      part.breaker_probation)
        self.watchdog = EdgeWatchdog(part.watchdog_deadline)
        #: Current rung index (0 = preferred transport).
        self.level = 0
        #: The active rung's module instance.
        self.inner = None
        #: Full transition history (dicts; see ``_switch``).
        self.transitions: list[dict] = []
        self._pending_level: Optional[int] = None
        self._synced_round: Optional[int] = None
        self._fault_this_round = False
        #: Partitions travelling the rescue path right now; non-empty
        #: blocks the inner rung's send-side round completion.
        self._rescue_pending: set[int] = set()
        self._takeover_gen = 0
        self._rescue_channel = None
        self._rescue_send_mr = None
        self._rescue_recv_mr = None

    # -- delegation ----------------------------------------------------

    def __getattr__(self, name):
        # Unknown attributes resolve against the active rung, so
        # diagnostics-driven callers (bench stats, edge summaries) see
        # the wrapped module's counters transparently.
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    @property
    def rung_name(self) -> str:
        """The active rung's module name (profiler-visible)."""
        return self.rungs[self.level].name

    @property
    def blocks_completion(self) -> bool:
        """True while rescued partitions are still in flight."""
        return bool(self._rescue_pending)

    # -- setup ---------------------------------------------------------

    def setup(self, send_req, recv_req) -> None:
        # Rescue resources first: the shared p2p channel and buffer MRs
        # exist before any rung can fail, whatever rung 0 is.
        self._rescue_channel = self.sender.channel_to(self.receiver.rank)
        self._rescue_send_mr = self.sender._register(send_req.buf)
        self._rescue_recv_mr = self.receiver._register(
            recv_req.buf, remote_write=True)
        self.inner = self._create(0)

    def _create(self, level: int):
        """Instantiate and set up the rung at ``level``."""
        module = self.rungs[level].create(
            self.cluster, self.send_req, self.recv_req)
        module.ladder = self
        module.setup(self.send_req, self.recv_req)
        return module

    # -- round lifecycle -----------------------------------------------

    def _sync_ladder(self, round_no: int) -> None:
        """Round-boundary bookkeeping (idempotent per round).

        Evaluates last round's watchdog, feeds the breaker a clean
        round, applies any pending rung switch, re-arms the watchdog.
        Whichever side's ``MPI_Start`` runs first does the work.
        """
        if round_no == self._synced_round:
            return
        counters = self.cluster.fabric.counters
        if self._synced_round is not None:
            if self.watchdog.expired(self.env.now):
                counters.inc("chaos.deadline_misses")
                self._record_failure(takeover=False)
            if not self._fault_this_round:
                closed = self.breaker.record_success()
                if (closed and self.level > 0
                        and self._pending_level is None):
                    # Probation passed: probe one rung up.
                    self._pending_level = self.level - 1
        if (self._pending_level is not None
                and self._pending_level != self.level):
            self._switch(self._pending_level, round_no)
        self._pending_level = None
        self._fault_this_round = False
        self._synced_round = round_no
        self.watchdog.arm(self.env.now)

    def start_send(self, req):
        self._sync_ladder(req.round)
        yield from self.inner.start_send(req)

    def start_recv(self, req):
        self._sync_ladder(req.round)
        yield from self.inner.start_recv(req)

    def pready(self, req, partition: int):
        yield from self.inner.pready(req, partition)

    # -- failure accounting --------------------------------------------

    def note_failure(self, kind: str, module=None) -> None:
        """A rung-level failure event (called by the inner module).

        Events from a retired rung (still draining its last round
        after a swap) are counted but do not feed the breaker — they
        describe the rung we already walked away from, and must not
        poison the new rung's probation.
        """
        self.cluster.fabric.counters.inc("chaos.edge_failures")
        if module is not None and module is not self.inner:
            return
        self._record_failure(takeover=True)

    def _record_failure(self, takeover: bool) -> None:
        self._fault_this_round = True
        counters = self.cluster.fabric.counters
        if self.breaker.record_failure():
            counters.inc("chaos.breaker_trips")
            if self.level + 1 < len(self.rungs):
                self._pending_level = self.level + 1
                if takeover:
                    self._begin_takeover()

    def _switch(self, new_level: int, round_no: int) -> None:
        counters = self.cluster.fabric.counters
        demotion = new_level > self.level
        counters.inc("chaos.ladder_demotions" if demotion
                     else "chaos.ladder_promotions")
        self.transitions.append({
            "time": self.env.now,
            "round": round_no,
            "from": self.rungs[self.level].name,
            "to": self.rungs[new_level].name,
            "level": new_level,
            "kind": "demote" if demotion else "promote",
        })
        # Retire the old rung.  The two sides reach the boundary at
        # different times, so the old rung may still be completing the
        # round before this one — it keeps serving rounds up to
        # ``round_no - 1`` and goes inert (its completion hooks no-op,
        # the router has no unbind) once each request advances past.
        old = self.inner
        old.retired_after = round_no - 1
        self.level = new_level
        self.inner = self._create(new_level)
        if new_level > 0:
            # Fallback rung: clean rounds now count toward promotion.
            self.breaker.begin_probation()
        else:
            self.breaker.reset()

    # -- mid-round rescue takeover -------------------------------------

    def _begin_takeover(self) -> None:
        """Divert the tripped rung's replay traffic to the rescue path.

        Only rungs built on a :class:`ReplayTracker` (the native
        module) support takeover; persist/channel rungs retry through
        their own internal paths and demote at the round boundary.
        """
        tracker = getattr(self.inner, "_tracker", None)
        if tracker is None or tracker.divert is not None:
            return
        tracker.divert = self._rescue_units
        if tracker.replay:
            units = list(tracker.replay)
            del tracker.replay[:]
            self._rescue_units(units)
        self._takeover_gen += 1
        self.env.process(
            self._takeover_sweep(tracker, self._takeover_gen))

    def _takeover_sweep(self, tracker, gen):
        """Rescue in-flight WRs stranded on dead QPs.

        The recovery loop sweeps vanished WRs itself while it runs (its
        sweep routes through ``queue`` and therefore the divert); this
        process picks up WRs whose QP dies *after* the loop exited.
        """
        delay = self.cluster.config.part.reconnect_delay
        while (self._takeover_gen == gen
               and (tracker._inflight or tracker.recovering)):
            yield delay
            if tracker.recovering:
                continue
            dead = [wr_id for wr_id, (tok, _) in tracker._inflight.items()
                    if tok.state is not QPState.RTS]
            for wr_id in dead:
                _, payload = tracker._inflight.pop(wr_id)
                self._rescue_units(tracker._on_dropped(payload))

    def _rescue_units(self, units) -> None:
        """Send replay-bound (start, count) runs per-partition over the
        shared p2p channel (``PART_DATA`` writes addressed to *this*
        ladder, so arrival lands in :meth:`handle_inbound`)."""
        counters = self.cluster.fabric.counters
        req = self.send_req
        size = req.partition_size
        proto = self.sender.config.ucx.protocol_for(size)
        for start, count in units:
            for p in range(start, start + count):
                if p in self._rescue_pending:
                    continue
                self._rescue_pending.add(p)
                counters.inc("chaos.rescued_partitions")
                send_off = req.buf.partition_offset(p)
                recv_off = self.recv_req.buf.partition_offset(p)
                header = Header(
                    kind=MsgKind.PART_DATA, seq=make_seq(),
                    sender=self.sender.rank, tag=req.tag, nbytes=size,
                    ref=(self, p))
                self._rescue_channel.submit(_PumpItem(
                    header=header,
                    gather=(self._rescue_send_mr.addr + send_off, size,
                            self._rescue_send_mr.lkey),
                    target=(self._rescue_recv_mr.addr + recv_off,
                            self._rescue_recv_mr.rkey),
                    cpu_cost=0.0,
                    gap=proto.gap,
                    on_sent=lambda wc, p=p: self._rescue_pending.discard(p)))

    def handle_inbound(self, process: "MPIProcess", header, payload):
        """Receiver side of the rescue path: land one partition.

        Deduplicates against partitions the rung already delivered (a
        replayed WR may have raced its own rescue) — rescue duplicates
        count separately from the rung's ``mpi.duplicates_dropped`` so
        the exactly-once invariant on the primary path stays checkable.
        """
        ucx = process.config.ucx
        partition = payload
        proto = ucx.protocol_for(header.nbytes)
        yield proto.t_recv
        req = self.recv_req
        if bool(req.arrived[partition]):
            self.cluster.fabric.counters.inc("chaos.rescue_duplicates")
        else:
            req.mark_arrived(partition, 1)
        if req.all_arrived and not req.done:
            req.mark_complete()


class LadderSpec(ModuleSpec):
    """Spec wrapping ordered rung specs (both sides pass equal ladders)."""

    name = "ladder"

    def __init__(self, rungs):
        rungs = list(rungs)
        if not rungs:
            raise ValueError("a ladder needs at least one rung")
        self.rungs = rungs

    def create(self, cluster, send_req, recv_req):
        return LadderModule(cluster, send_req, recv_req, self.rungs)

    def plan(self):
        """This ladder as one ``fallback`` plan (rungs become legs)."""
        from repro.plan import Fallback, Plan, spec_to_plan

        return Plan((Fallback(rungs=tuple(
            spec_to_plan(rung) for rung in self.rungs)),))
