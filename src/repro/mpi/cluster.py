"""The cluster: environment, fabric, ranks, partitioned matching."""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.config import ClusterConfig, NIAGARA
from repro.errors import MatchingError
from repro.ib.fabric import Fabric
from repro.mpi.process import MPIProcess
from repro.mpi.request import PartitionedState, PrecvRequest, PsendRequest
from repro.sim.core import Environment
from repro.sim.monitor import Trace
from repro.sim.rng import RngStreams
from repro.units import us

#: Virtual time for the asynchronous QP exchange + RTR/RTS bring-up at
#: init (absorbed by warm-up rounds; Start polls for it on round one).
SETUP_DELAY = us(50)


class Cluster:
    """A set of MPI processes on a simulated fabric.

    >>> cluster = Cluster(n_nodes=2)
    >>> rank0, rank1 = cluster.ranks(2)
    >>> # drive programs with cluster.spawn(...) and cluster.run()
    """

    def __init__(self, n_nodes: int, config: Optional[ClusterConfig] = None,
                 topology=None):
        self.config = config if config is not None else NIAGARA
        self.config.validate()
        self.env = Environment()
        self.trace = Trace(enabled=self.config.trace_enabled)
        self.fabric = Fabric(self.env, self.config, self.trace,
                             topology=topology)
        for node in range(n_nodes):
            self.fabric.add_node(node)
        self.rngs = RngStreams(self.config.seed)
        self.processes: list[MPIProcess] = []
        self._pending_partitioned: dict[tuple, deque] = {}

    # -- topology ------------------------------------------------------------

    def add_process(self, node_id: Optional[int] = None) -> MPIProcess:
        """Create the next rank (default: one rank per node, in order)."""
        rank = len(self.processes)
        if node_id is None:
            node_id = rank % self.fabric.n_nodes
        proc = MPIProcess(self, rank, node_id)
        self.processes.append(proc)
        return proc

    def ranks(self, n: int) -> list[MPIProcess]:
        """Create ``n`` processes (one per node round-robin)."""
        return [self.add_process() for _ in range(n)]

    def process_by_rank(self, rank: int) -> MPIProcess:
        if not (0 <= rank < len(self.processes)):
            raise MatchingError(f"no rank {rank} (world size "
                                f"{len(self.processes)})")
        return self.processes[rank]

    @property
    def world_size(self) -> int:
        return len(self.processes)

    # -- execution --------------------------------------------------------------

    def spawn(self, generator):
        """Run a program (generator) as a simulation process."""
        return self.env.process(generator)

    def run(self, until=None):
        """Advance the simulation (see :meth:`repro.sim.Environment.run`)."""
        return self.env.run(until=until)

    # -- partitioned matching -----------------------------------------------------

    def match_partitioned(self, req) -> None:
        """Match Psend/Precv inits by (src, dst, tag) in posted order.

        No wildcards (MPI Partitioned forbids them); counts and sizes
        are checked at match time, and the transport module is
        instantiated for the pair.
        """
        if isinstance(req, PsendRequest):
            key = (req.process.rank, req.peer, req.tag)
        else:
            key = (req.peer, req.process.rank, req.tag)
        queue = self._pending_partitioned.setdefault(key, deque())
        # Match with an opposite-kind entry, FIFO.
        for i, other in enumerate(queue):
            if other.kind != req.kind:
                del queue[i]
                self._complete_match(other, req)
                return
        queue.append(req)

    def _complete_match(self, a, b) -> None:
        send_req = a if isinstance(a, PsendRequest) else b
        recv_req = a if isinstance(a, PrecvRequest) else b
        if not (isinstance(send_req, PsendRequest)
                and isinstance(recv_req, PrecvRequest)):
            raise MatchingError("matched requests of the same kind")
        if send_req.total_bytes != recv_req.total_bytes:
            raise MatchingError(
                f"size mismatch: send {send_req.total_bytes}B vs "
                f"recv {recv_req.total_bytes}B")
        if send_req.n_partitions != recv_req.n_partitions:
            raise MatchingError(
                "this implementation requires equal sender and receiver "
                f"partition counts, got {send_req.n_partitions} vs "
                f"{recv_req.n_partitions}")
        if send_req.module_name != recv_req.module_name:
            raise MatchingError(
                f"module mismatch: {send_req.module_name} vs "
                f"{recv_req.module_name}")
        module = send_req.module_spec.create(self, send_req, recv_req)
        send_req.module = module
        recv_req.module = module
        env = self.env

        def setup_proc(env):
            # Asynchronous QP exchange / NIC bring-up (Section IV-A).
            yield SETUP_DELAY
            module.setup(send_req, recv_req)
            send_req.state = PartitionedState.INACTIVE
            recv_req.state = PartitionedState.INACTIVE
            send_req.ready_event.succeed(None)
            recv_req.ready_event.succeed(None)
            # Wake any rank already parked in Start.
            send_req.process.engine.kick()
            recv_req.process.engine.kick()

        env.process(setup_proc(env))

    def __repr__(self) -> str:
        return (f"<Cluster nodes={self.fabric.n_nodes} "
                f"ranks={len(self.processes)}>")
