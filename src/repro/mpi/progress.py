"""Compatibility re-export: the progress engine moved to the engine layer.

The :class:`ProgressEngine` is now the *driver* of the transport engine
(:mod:`repro.engine`) rather than a peer of the MPI modules; it lives in
:mod:`repro.engine.progress`.  This module keeps the historical import
path working.
"""

from repro.engine.progress import _IDLE_FALLBACK, Poller, ProgressEngine

__all__ = ["ProgressEngine", "Poller", "_IDLE_FALLBACK"]
