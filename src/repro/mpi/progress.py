"""Deprecated re-export: the progress engine moved to the engine layer.

The :class:`ProgressEngine` is now the *driver* of the transport engine
(:mod:`repro.engine`) rather than a peer of the MPI modules; it lives in
:mod:`repro.engine.progress`.  Importing it from here still works but
raises a :class:`DeprecationWarning`; update imports to
``repro.engine.progress``.
"""

import warnings

from repro.engine.progress import _IDLE_FALLBACK, Poller, ProgressEngine

warnings.warn(
    "repro.mpi.progress is deprecated; import ProgressEngine and Poller "
    "from repro.engine.progress instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["ProgressEngine", "Poller", "_IDLE_FALLBACK"]
