"""One MPI rank: point-to-point transport plus the partitioned API."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import MatchingError, MPIError, RequestError
from repro.ib.constants import ACCESS_LOCAL, ACCESS_REMOTE_WRITE
from repro.ib.device import Context
from repro.ib.wr import RecvWR
from repro.mem.buffer import Buffer, PartitionedBuffer
from repro.mpi.endpoint import (
    Channel,
    Header,
    MsgKind,
    _PumpItem,
    make_seq,
    ring_payload,
)
from repro.engine import CompletionRouter, ProgressEngine
from repro.mpi.request import (
    P2PRequest,
    PartitionedState,
    PrecvRequest,
    PsendRequest,
)

if TYPE_CHECKING:
    from repro.mpi.cluster import Cluster


class MPIProcess:
    """A simulated MPI process (one rank, one node in these experiments)."""

    def __init__(self, cluster: "Cluster", rank: int, node_id: int):
        self.cluster = cluster
        self.rank = rank
        self.node_id = node_id
        self.env = cluster.env
        self.config = cluster.config
        self.ib = Context(cluster.fabric, node_id)
        self.p2p_pd = self.ib.alloc_pd()
        self.p2p_cq = self.ib.create_cq(capacity=1 << 20)
        self.engine = ProgressEngine(
            self.env, self.config.host.t_poll_miss,
            idle_fallback=self.config.engine.idle_fallback)
        #: Completion router: CQ polling plus per-wr_id dispatch.  The
        #: shared p2p CQ binds here; partitioned modules bind their own
        #: CQs in setup, in registration order.
        self.router = CompletionRouter(self.engine, self.config.host,
                                       batch=self.config.engine.poll_batch)
        self.router.bind(self.p2p_cq, self._on_p2p_wc)
        #: Software-cost multiplier (>1 when threads oversubscribe cores).
        self.sw_multiplier = 1.0
        #: Per-collective epoch counters (tag namespacing across
        #: repeated/concurrent collectives; see repro.mpi.collectives).
        self._coll_epochs: dict[str, int] = {}
        # transport state
        self._channels_out: dict[int, Channel] = {}
        self._inbound_headers: dict[int, Header] = {}
        self._mr_cache: dict[int, object] = {}
        # p2p matching
        self._posted_recvs: list[P2PRequest] = []
        self._unexpected: list[tuple[Header, Optional[np.ndarray]]] = []
        self._unexpected_rts: list[Header] = []
        self._pending_rndv_sends: dict[int, tuple[P2PRequest, object]] = {}

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def software_cost(self, t: float) -> float:
        """CPU cost adjusted for core oversubscription (Fig. 8 @128)."""
        return t * self.sw_multiplier

    def next_coll_epoch(self, name: str) -> int:
        """Next tag-namespacing epoch for the collective ``name``.

        Every collective implementation (the token/binomial helpers in
        :mod:`repro.mpi.collectives` and the partitioned collectives in
        :mod:`repro.coll`) draws its per-instance epoch here, so
        repeated and concurrent collectives of the same name never
        cross-match as long as all ranks issue them in the same order —
        the standard MPI collective-ordering requirement.
        """
        epoch = self._coll_epochs.get(name, 0) + 1
        self._coll_epochs[name] = epoch
        return epoch

    def channel_to(self, dest: int) -> Channel:
        """The outbound channel to ``dest`` (created and connected lazily)."""
        chan = self._channels_out.get(dest)
        if chan is None:
            peer = self.cluster.process_by_rank(dest)
            chan = Channel(self, peer)
            self._channels_out[dest] = chan
        return chan

    def _register(self, buf: Buffer, remote_write: bool = False):
        """Register (and cache) an MR for a user buffer."""
        mr = self._mr_cache.get(buf.addr)
        if mr is None or (remote_write and not (mr.access & ACCESS_REMOTE_WRITE)):
            access = ACCESS_LOCAL | (ACCESS_REMOTE_WRITE if remote_write else 0)
            mr = self.p2p_pd.reg_mr(buf, access)
            self._mr_cache[buf.addr] = mr
        return mr

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def isend(self, buf: Buffer, dest: int, tag: int,
              nbytes: Optional[int] = None, offset: int = 0) -> P2PRequest:
        """Non-blocking send through the UCX-like path."""
        if dest == self.rank:
            raise MPIError("self-sends are not supported")
        nbytes = buf.nbytes - offset if nbytes is None else nbytes
        if nbytes < 0 or offset < 0 or offset + nbytes > buf.nbytes:
            raise MPIError(f"send range [{offset}, +{nbytes}) outside buffer")
        req = P2PRequest(self, "send", buf, nbytes, dest, tag)
        ucx = self.config.ucx
        chan = self.channel_to(dest)
        mr = self._register(buf)
        gather = (mr.addr + offset, nbytes, mr.lkey) if nbytes > 0 else None
        proto = ucx.protocol_for(nbytes)
        if not proto.rendezvous:
            cost = proto.t_send
            if proto.copies:
                cost += nbytes / self.config.host.memcpy_rate
            header = Header(kind=MsgKind.EAGER, seq=make_seq(),
                            sender=self.rank, tag=tag, nbytes=nbytes,
                            ref=chan)
            chan.submit(_PumpItem(
                header=header, gather=gather, target=None,
                cpu_cost=self.software_cost(cost), gap=proto.gap,
                to_ring=True, on_sent=lambda wc: req.mark_complete()))
        else:
            self._pending_rndv_sends[req.request_id] = (req, gather)
            header = Header(kind=MsgKind.RNDV_RTS, seq=make_seq(),
                            sender=self.rank, tag=tag, nbytes=nbytes,
                            ref=req.request_id)
            chan.submit(_PumpItem(
                header=header, gather=None, target=None,
                cpu_cost=self.software_cost(proto.t_send),
                gap=ucx.gap_inline))
        return req

    def irecv(self, buf: Buffer, source: int, tag: int,
              nbytes: Optional[int] = None, offset: int = 0) -> P2PRequest:
        """Non-blocking receive (no wildcards, as in partitioned MPI)."""
        nbytes = buf.nbytes - offset if nbytes is None else nbytes
        if nbytes < 0 or offset < 0 or offset + nbytes > buf.nbytes:
            raise MPIError(f"recv range [{offset}, +{nbytes}) outside buffer")
        req = P2PRequest(self, "recv", buf, nbytes, source, tag)
        req.recv_offset = offset
        # Unexpected eager message already here?
        for i, (header, payload) in enumerate(self._unexpected):
            if header.sender == source and header.tag == tag:
                del self._unexpected[i]
                if header.nbytes > nbytes:
                    raise MatchingError(
                        f"message of {header.nbytes}B truncated to {nbytes}B")
                buf.write(offset, payload)
                req.mark_complete()
                return req
        # Unexpected rendezvous RTS?
        for i, header in enumerate(self._unexpected_rts):
            if header.sender == source and header.tag == tag:
                del self._unexpected_rts[i]
                self._reply_cts(header, req)
                return req
        self._posted_recvs.append(req)
        return req

    def _match_posted(self, header: Header) -> Optional[P2PRequest]:
        for i, req in enumerate(self._posted_recvs):
            if req.peer == header.sender and req.tag == header.tag:
                del self._posted_recvs[i]
                return req
        return None

    def _reply_cts(self, rts: Header, req: P2PRequest) -> None:
        """Answer a rendezvous RTS: expose the receive buffer."""
        if rts.nbytes > req.nbytes:
            raise MatchingError(
                f"rendezvous message of {rts.nbytes}B truncated to {req.nbytes}B")
        mr = self._register(req.buf, remote_write=True)
        offset = getattr(req, "recv_offset", 0)
        chan = self.channel_to(rts.sender)
        header = Header(kind=MsgKind.RNDV_CTS, seq=make_seq(),
                        sender=self.rank, tag=rts.tag,
                        ref=(rts.ref, req, mr.addr + offset, mr.rkey))
        chan.submit(_PumpItem(header=header, gather=None, target=None,
                              cpu_cost=self.config.ucx.t_rndv,
                              gap=self.config.ucx.gap_inline))

    def _on_p2p_wc(self, wc):
        """Dispatch one completion from the shared p2p CQ (router hook)."""
        if not wc.ok:
            yield from self._handle_p2p_failure(wc)
        elif wc.imm_data is not None:
            header = self._inbound_headers.pop(wc.imm_data, None)
            if header is None:
                raise MPIError(f"no header for seq {wc.imm_data}")
            # Replenish the consumed RQ entry.
            self.ib.nic.qps[wc.qp_num].post_recv(RecvWR(wr_id=0))
            yield from self._handle_inbound(header)
        else:
            callback = self.router.pop_success(wc.wr_id)
            self.router.pop_failure(wc.wr_id)
            if callback is not None:
                result = callback(wc)
                if result is not None and hasattr(result, "send"):
                    yield from result

    def _handle_p2p_failure(self, wc):
        """Route a failed completion to recovery, or surface it.

        With no reconnect policy armed the failure escapes as a typed
        error through whoever is driving the progress engine — the
        MPI layer never hangs on a dead channel.
        """
        from repro.ib.constants import WCStatus

        faults = self.cluster.fabric.faults
        if faults is None or not faults.schedule.allow_reconnect:
            from repro.errors import ChannelDownError, RetryExhaustedError

            nic = self.config.nic
            retries = {"retry_cnt": nic.retry_cnt,
                       "rnr_retry": nic.rnr_retry}
            if wc.status in (WCStatus.RETRY_EXC_ERR,
                             WCStatus.RNR_RETRY_EXC_ERR):
                raise RetryExhaustedError(
                    "p2p WR failed and reconnect is disabled",
                    edge=(self.rank, None), wr_id=wc.wr_id,
                    qp_num=wc.qp_num, status=wc.status.value,
                    retries=retries)
            raise ChannelDownError(
                "p2p WR flushed and reconnect is disabled",
                edge=(self.rank, None), wr_id=wc.wr_id,
                qp_num=wc.qp_num, status=wc.status.value,
                retries=retries)
        self.cluster.fabric.counters.inc("mpi.p2p_failures")
        entry = self.router.pop_failure(wc.wr_id)
        if entry is None:
            # A flushed receive prestock entry: the reconnect walk
            # restocks the RQ, nothing else to do.
            return
        chan, payload, _qp = entry
        self.router.pop_success(wc.wr_id)
        if chan is not None and getattr(payload, "on_error", None) is None:
            chan.note_failure(payload)
            return
        handler = payload.on_error if chan is not None else payload
        result = handler(wc)
        if result is not None and hasattr(result, "send"):
            yield from result
        return
        yield  # pragma: no cover - generator protocol

    def _handle_inbound(self, header: Header):
        env = self.env
        ucx = self.config.ucx
        kind = header.kind
        if kind is MsgKind.EAGER:
            proto = ucx.protocol_for(header.nbytes)
            yield proto.t_recv
            req = self._match_posted(header)
            if req is None:
                payload = ring_payload(header.ref, header)
                staged = payload.copy() if payload is not None else None
                self._unexpected.append((header, staged))
                return
            if header.nbytes > req.nbytes:
                raise MatchingError(
                    f"message of {header.nbytes}B truncated to {req.nbytes}B")
            if proto.copies and header.nbytes > 0:
                yield header.nbytes / self.config.host.memcpy_rate
            payload = ring_payload(header.ref, header)
            req.buf.write(getattr(req, "recv_offset", 0), payload)
            req.mark_complete()
        elif kind is MsgKind.RNDV_RTS:
            yield ucx.rx_rndv
            req = self._match_posted(header)
            if req is None:
                self._unexpected_rts.append(header)
                return
            self._reply_cts(header, req)
        elif kind is MsgKind.RNDV_CTS:
            yield ucx.rx_rndv
            send_req_id, recv_req, addr, rkey = header.ref
            entry = self._pending_rndv_sends.pop(send_req_id, None)
            if entry is None:
                raise MPIError(f"CTS for unknown send request {send_req_id}")
            send_req, gather = entry
            chan = self.channel_to(header.sender)
            data_header = Header(kind=MsgKind.RNDV_DATA, seq=make_seq(),
                                 sender=self.rank, tag=header.tag,
                                 nbytes=send_req.nbytes, ref=recv_req)
            chan.submit(_PumpItem(
                header=data_header, gather=gather, target=(addr, rkey),
                cpu_cost=self.config.ucx.t_rndv, gap=ucx.gap_rndv,
                on_sent=lambda wc: send_req.mark_complete()))
        elif kind is MsgKind.RNDV_DATA:
            yield ucx.rx_rndv
            header.ref.mark_complete()
        elif kind in (MsgKind.PART_DATA, MsgKind.PART_RTS, MsgKind.PART_ATS):
            module, payload = header.ref
            yield from module.handle_inbound(self, header, payload)
        else:  # pragma: no cover - all kinds handled above
            raise MPIError(f"unhandled message kind {kind}")

    # -- blocking conveniences (generators) ---------------------------------

    def wait(self, req) -> object:
        """Progress until ``req`` completes (``MPI_Wait``); yields."""
        yield from self.engine.wait_until(lambda: req.done)
        return req

    def wait_all(self, reqs) -> None:
        """Progress until every request completes; yields."""
        yield from self.engine.wait_until(lambda: all(r.done for r in reqs))

    def test(self, req):
        """One progress pass; yields, returns ``req.done`` (``MPI_Test``)."""
        yield from self.engine.progress_once()
        return req.done

    def send(self, buf: Buffer, dest: int, tag: int, **kw):
        req = self.isend(buf, dest, tag, **kw)
        yield from self.wait(req)

    def recv(self, buf: Buffer, source: int, tag: int, **kw):
        req = self.irecv(buf, source, tag, **kw)
        yield from self.wait(req)

    # -- classic persistent point-to-point -----------------------------------

    def send_init(self, buf: Buffer, dest: int, tag: int,
                  nbytes: Optional[int] = None, offset: int = 0):
        """``MPI_Send_init``: a reusable send request (non-blocking)."""
        from repro.mpi.request import PersistentP2PRequest

        nbytes = buf.nbytes - offset if nbytes is None else nbytes
        if nbytes < 0 or offset < 0 or offset + nbytes > buf.nbytes:
            raise MPIError(f"send range [{offset}, +{nbytes}) outside buffer")
        return PersistentP2PRequest(self, "send", buf, nbytes, dest, tag,
                                    offset)

    def recv_init(self, buf: Buffer, source: int, tag: int,
                  nbytes: Optional[int] = None, offset: int = 0):
        """``MPI_Recv_init``: a reusable receive request (non-blocking)."""
        from repro.mpi.request import PersistentP2PRequest

        nbytes = buf.nbytes - offset if nbytes is None else nbytes
        if nbytes < 0 or offset < 0 or offset + nbytes > buf.nbytes:
            raise MPIError(f"recv range [{offset}, +{nbytes}) outside buffer")
        return PersistentP2PRequest(self, "recv", buf, nbytes, source, tag,
                                    offset)

    def start_p2p(self, req) -> None:
        """``MPI_Start`` for a classic persistent request (non-blocking)."""
        req.start()

    def startall(self, reqs) -> None:
        """``MPI_Startall``: activate several persistent requests."""
        for req in reqs:
            req.start()

    # ------------------------------------------------------------------
    # MPI Partitioned
    # ------------------------------------------------------------------

    def psend_init(self, buf: PartitionedBuffer, dest: int, tag: int,
                   module) -> PsendRequest:
        """``MPI_Psend_init``: non-blocking persistent init (sender)."""
        req = PsendRequest(self, buf, dest, tag, module.name)
        req.module_spec = module
        self.cluster.match_partitioned(req)
        return req

    def precv_init(self, buf: PartitionedBuffer, source: int, tag: int,
                   module) -> PrecvRequest:
        """``MPI_Precv_init``: non-blocking persistent init (receiver)."""
        req = PrecvRequest(self, buf, source, tag, module.name)
        req.module_spec = module
        self.cluster.match_partitioned(req)
        return req

    def start(self, req):
        """``MPI_Start``: (re)activate a partitioned request; yields.

        On the first round this polls until the remote buffers are ready
        (the paper's stand-in for ``MPI_Pbuf_prepare``, Section IV-A).
        """
        if req.state is PartitionedState.ACTIVE:
            raise RequestError("Start on an already-active request")
        if not req.ready_event.triggered:
            yield from self.engine.wait_until(
                lambda: req.ready_event.triggered)
        req.reset_round_stats()
        req.rearm()
        if req.kind == "send":
            yield from req.module.start_send(req)
        else:
            yield from req.module.start_recv(req)

    def pready(self, req: PsendRequest, partition: int):
        """``MPI_Pready``: mark a partition ready; yields (thread context)."""
        req.require_active("Pready")
        req.check_partition(partition)
        if not isinstance(req, PsendRequest):
            raise RequestError("Pready is only valid on Psend requests")
        req.record_pready(partition)
        yield from req.module.pready(req, partition)

    def parrived(self, req: PrecvRequest, partition: int):
        """``MPI_Parrived``: yields, returns arrival of one partition.

        Checks the flag first; if unset, takes one non-blocking progress
        pass (try-lock discipline) and re-checks.
        """
        req.check_partition(partition)
        if not isinstance(req, PrecvRequest):
            raise RequestError("Parrived is only valid on Precv requests")
        if bool(req.arrived[partition]):
            return True
        yield from self.engine.progress_once()
        return bool(req.arrived[partition])

    def wait_partitioned(self, req):
        """``MPI_Wait`` on a partitioned request; yields.

        With ``part.epoch_deadline`` configured the wait is bounded:
        an epoch still incomplete after that much virtual time raises
        :class:`~repro.errors.EpochDeadlineError` instead of hanging.
        """
        deadline = self.config.part.epoch_deadline
        if deadline is not None:
            deadline = self.env.now + deadline
        yield from self.engine.wait_until(
            lambda: req.done, deadline=deadline,
            describe=f"partitioned {req.kind} round {req.round}")
        return req

    # ------------------------------------------------------------------
    # MPI Partitioned collectives (repro.coll facade)
    # ------------------------------------------------------------------
    #
    # The collective objects live in the ``repro.coll`` layer above this
    # one; these methods are the rank-local MPIX-style entry points
    # (``MPIX_Pneighbor_alltoall_init`` and friends), imported lazily so
    # the p2p/partitioned core stays importable without the coll layer.

    def pneighbor_alltoall_init(self, send_bufs, recv_bufs, module_for):
        """Persistent partitioned neighbor-alltoall init (non-blocking).

        ``send_bufs``/``recv_bufs`` map neighbor rank ->
        :class:`~repro.mem.buffer.PartitionedBuffer`; ``module_for``
        resolves each neighbor to its transport module (one aggregation
        plan per edge — see :func:`repro.coll.edge_modules`).
        """
        from repro.coll.neighbor import PneighborAlltoall

        return PneighborAlltoall(self, send_bufs, recv_bufs, module_for)

    def pbcast_init(self, buf, world: int, root: int = 0, module_for=None):
        """Persistent partitioned broadcast init over a binomial tree."""
        from repro.coll.tree import Pbcast

        return Pbcast(self, buf, world, root=root, module_for=module_for)

    def pallreduce_init(self, buf, world: int, op=None, module_for=None):
        """Persistent partitioned allreduce init (reduce + bcast trees)."""
        from repro.coll.tree import Pallreduce

        return Pallreduce(self, buf, world, op=op, module_for=module_for)

    def pcoll_start(self, coll):
        """``MPI_Start`` on a partitioned collective; yields."""
        yield from coll.start()

    def pcoll_pready(self, coll, partition: int, neighbor=None):
        """``MPI_Pready`` a partition of a collective; yields.

        ``neighbor=None`` readies the partition on every outgoing edge
        (the contribution is complete); a rank readies toward a single
        neighbor by naming it.
        """
        yield from coll.pready(partition, neighbor=neighbor)

    def pcoll_parrived(self, coll, neighbor, partition: int):
        """``MPI_Parrived`` on one inbound edge of a collective; yields."""
        result = yield from coll.parrived(neighbor, partition)
        return result

    def pcoll_wait(self, coll):
        """``MPI_Wait`` on a partitioned collective; yields."""
        yield from coll.wait()
        return coll

    def __repr__(self) -> str:
        return f"<MPIProcess rank={self.rank} node={self.node_id}>"
