"""The baseline ``part_persist`` module: one message per user partition.

Mirrors Open MPI 5.0.x's persistent partitioned component over UCX:

* ``MPI_Pready`` triggers an internal per-partition send through the
  UCX-like endpoint (eager below 8 KiB, rendezvous above — with the
  1 KiB bcopy/zcopy switch whose protocol spikes the paper calls out);
* every partition message takes the shared endpoint lock in the calling
  thread (the UCX worker serialization that aggregation amortizes —
  the lock-contention effect behind Fig. 8's 128-partition results);
* rendezvous-sized partitions use UCX's **receiver-driven get-zcopy**:
  the RTS header triggers an RDMA READ issued from the receiver's
  progress engine, so bulk data flows without any sender-side CPU —
  this is what gives the persistent baseline its strong early-bird
  behaviour in the perceived-bandwidth results (Fig. 9).  An
  ack-to-sender (ATS) message closes the protocol so the sender can
  complete its request;
* the receiver's progress engine pays a per-message dispatch cost.

No aggregation: what the paper compares everything against.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.engine import CreditManager, Rail, RailPolicy, reconnect_walk
from repro.ib.constants import (
    ACCESS_LOCAL,
    ACCESS_REMOTE_READ,
    Opcode,
    QPState,
)
from repro.ib.wr import SGE, SendWR
from repro.mpi.endpoint import Header, MsgKind, _PumpItem, make_seq
from repro.mpi.modules import ModuleSpec, PartitionedModule
from repro.sim.sync import SimLock

if TYPE_CHECKING:
    from repro.mpi.process import MPIProcess

_read_wrid = itertools.count(1 << 48)


class PersistModule(PartitionedModule):
    """Baseline transport for one matched pair."""

    def __init__(self, cluster, send_req, recv_req):
        super().__init__(cluster, send_req, recv_req)
        self.sender: "MPIProcess" = send_req.process
        self.receiver: "MPIProcess" = recv_req.process
        self.channel = None
        self.recv_mr = None
        self.send_mr = None
        #: UCX worker lock: per-partition posts serialize on this.
        self.worker_lock = SimLock(self.env)
        # Round credit (remote buffer readiness): partition messages for
        # round N only go on the wire once the receiver's Start for
        # round N has been seen — the internal-matching gate real
        # persistent implementations have.  Credit lands one fabric
        # latency after the receiver re-arms.
        self._credit = CreditManager(self.env, self._drain_deferred)
        # per-round sender state
        self._acked = 0
        self._readied = 0

    @property
    def _armed_round(self) -> int:
        return self._credit.armed_round

    @property
    def _deferred(self) -> list:
        return self._credit.deferred

    # -- setup ------------------------------------------------------------

    def setup(self, send_req, recv_req) -> None:
        from repro.ib import verbs

        self.channel = self.sender.channel_to(self.receiver.rank)
        # The send buffer must be remotely *readable* for get-zcopy.
        self.send_mr = self.sender.p2p_pd.reg_mr(
            send_req.buf, ACCESS_LOCAL | ACCESS_REMOTE_READ)
        self.recv_mr = self.receiver._register(recv_req.buf,
                                               remote_write=True)
        # QP pairs for the rendezvous gets, owned by the receiver (the
        # requester side of the RDMA READ).  Two rails, as UCX
        # multi-path rndv, so bulk reads reach line rate.  Completions
        # land on the receiver's shared p2p CQ.
        self.read_qps = []
        for _ in range(self.cluster.config.ucx.n_lanes):
            requester = self.receiver.ib.create_qp(
                self.receiver.p2p_pd, self.receiver.p2p_cq,
                self.receiver.p2p_cq)
            responder = self.sender.ib.create_qp(
                self.sender.p2p_pd, self.sender.p2p_cq, self.sender.p2p_cq)
            verbs.connect_qps(requester, responder)
            # No RQ stocking: RDMA READs consume no receive WRs.
            self.read_qps.append(requester)
        self.read_rail = Rail(self.read_qps, RailPolicy.ROUND_ROBIN)

    # -- round management ----------------------------------------------------

    def start_send(self, req):
        self._acked = 0
        self._readied = 0
        return
        yield  # pragma: no cover - generator protocol

    def start_recv(self, req):
        flight = self.cluster.fabric.latency(
            self.receiver.node_id, self.sender.node_id)
        self._credit.grant(req.round, flight)
        return
        yield  # pragma: no cover - generator protocol

    def _drain_deferred(self):
        """Dispatch everything parked behind the round credit."""
        while self._credit.deferred:
            self._dispatch(self._credit.deferred.pop(0))
            yield 0.0

    # -- sender path ------------------------------------------------------------

    def pready(self, req, partition: int):
        """Per-partition internal isend (in the calling thread)."""
        sender = self.sender
        ucx = sender.config.ucx
        size = req.partition_size
        proto = ucx.protocol_for(size)
        # The UCX worker lock: held while the protocol code runs.  The
        # acquisition itself costs a contended cache-line transfer,
        # like the native module's arrival atomics.
        yield self.worker_lock.acquire()
        try:
            cost = proto.t_send + sender.config.host.t_atomic
            if proto.copies:
                cost += size / sender.config.host.memcpy_rate
            yield sender.software_cost(cost)
            self._readied += 1
            if not self._credit.ready(req.round):
                # Receiver has not re-armed this round yet: park the
                # partition until its credit arrives.
                self._credit.defer(partition)
            else:
                self._dispatch(partition)
        finally:
            self.worker_lock.release()
        # Give the progress engine a poke (non-blocking), as the real
        # module does from within MPI calls — this is what lets pending
        # handshakes be handled while threads are still arriving.
        yield from sender.engine.progress_once()

    def _dispatch(self, partition: int) -> None:
        """Put one readied partition on the wire (eager or RTS)."""
        req = self.send_req
        size = req.partition_size
        ucx = self.sender.config.ucx
        proto = ucx.protocol_for(size)
        if not proto.rendezvous:
            self._submit_data(partition)
        else:
            # Rendezvous: RTS now; the receiver's progress engine
            # answers with an RDMA READ of the partition.
            header = Header(
                kind=MsgKind.PART_RTS, seq=make_seq(),
                sender=self.sender.rank, tag=req.tag,
                nbytes=size, ref=(self, partition))
            self.channel.submit(_PumpItem(
                header=header, gather=None, target=None, cpu_cost=0.0,
                gap=ucx.gap_inline))

    def _submit_data(self, partition: int) -> None:
        """Queue the partition's payload write into the receive buffer."""
        req = self.send_req
        size = req.partition_size
        offset = req.buf.partition_offset(partition)
        proto = self.sender.config.ucx.protocol_for(size)
        header = Header(
            kind=MsgKind.PART_DATA, seq=make_seq(),
            sender=self.sender.rank, tag=req.tag, nbytes=size,
            ref=(self, partition))
        self.channel.submit(_PumpItem(
            header=header,
            gather=(self.send_mr.addr + offset, size, self.send_mr.lkey),
            target=(self.recv_mr.addr + offset, self.recv_mr.rkey),
            cpu_cost=0.0,
            gap=proto.gap,
            on_sent=self._on_partition_acked))

    def _issue_read(self, partition: int):
        """Receiver-driven get: RDMA READ the partition into place."""
        req = self.send_req
        size = req.partition_size
        offset = req.buf.partition_offset(partition)
        requester = yield from self.read_rail.acquire()
        if requester.state is not QPState.RTS:
            # The read rail died under us: reconnect and retry later.
            yield from self._on_read_failed(partition)
            return
        wr_id = next(_read_wrid)
        # The callback is a generator: the completion router runs it and
        # charges its completion-handling time.
        self.receiver.router.on_success(
            wr_id, lambda wc, p=partition: self._on_read_complete(p))
        self.receiver.router.on_failure(
            wr_id,
            (None, lambda wc, p=partition: self._on_read_failed(p), requester))
        requester.post_send(SendWR(
            wr_id=wr_id,
            opcode=Opcode.RDMA_READ,
            sg_list=[SGE(self.recv_mr.addr + offset, size,
                         self.recv_mr.lkey)],
            remote_addr=self.send_mr.addr + offset,
            rkey=self.send_mr.rkey,
        ))

    def _on_read_failed(self, partition: int):
        """A get-zcopy READ died: reconnect the read rails and re-issue.

        Nothing landed (a failed READ scatters no data), so re-issuing
        after the reconnect walk is exactly-once by construction.
        """
        self.cluster.fabric.counters.inc("mpi.read_replays")
        if self.ladder is not None:
            self.ladder.note_failure("read_replay", module=self)
        yield self.cluster.config.part.reconnect_delay
        reconnect_walk(
            (requester, requester,
             self.sender.ib.nic.qps.get(requester.dest_qp_num))
            for requester in self.read_rail)
        yield from self._issue_read(partition)

    def _on_read_complete(self, partition: int):
        """Receiver side: data landed; mark it and ack the sender.

        Runs as a generator on the receiver's progress engine and pays
        the per-message rendezvous completion cost (protocol state
        teardown + ATS build) that the old write-based path charged on
        data arrival.
        """
        yield self.receiver.config.ucx.rx_rndv
        self.recv_req.mark_arrived(partition, 1)
        if self.recv_req.all_arrived:
            self.recv_req.mark_complete()
        back = self.receiver.channel_to(self.sender.rank)
        ats = Header(kind=MsgKind.PART_ATS, seq=make_seq(),
                     sender=self.receiver.rank, tag=self.send_req.tag,
                     ref=(self, partition))
        back.submit(_PumpItem(header=ats, gather=None, target=None,
                              cpu_cost=0.0,
                              gap=self.receiver.config.ucx.gap_inline))

    def _on_partition_acked(self, wc=None) -> None:
        if self._retired_for(self.send_req):
            return  # stale ack into a round a newer rung owns
        self._acked += 1
        if (self._acked == self.send_req.n_partitions
                and self._readied == self.send_req.n_partitions):
            self.send_req.mark_complete()

    # -- receiver path ------------------------------------------------------------

    def handle_inbound(self, process: "MPIProcess", header: Header, payload):
        """Dispatch PART_* messages on either side's progress engine."""
        env = self.env
        ucx = process.config.ucx
        _module, partition = header.ref
        if header.kind is MsgKind.PART_DATA:
            proto = ucx.protocol_for(header.nbytes)
            yield proto.t_recv
            self.recv_req.mark_arrived(partition, 1)
            if self.recv_req.all_arrived:
                self.recv_req.mark_complete()
        elif header.kind is MsgKind.PART_RTS:
            # Receiver side: issue the rendezvous get (RDMA READ).
            yield ucx.rx_rndv
            yield from self._issue_read(partition)
        elif header.kind is MsgKind.PART_ATS:
            # Sender side: the receiver finished reading this partition.
            yield ucx.rx_inline
            self._on_partition_acked()


class PersistSpec(ModuleSpec):
    """Spec for the baseline module (pass to both init calls)."""

    name = "part_persist"

    def create(self, cluster, send_req, recv_req):
        return PersistModule(cluster, send_req, recv_req)
