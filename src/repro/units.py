"""Byte-size and time-unit helpers used throughout the package.

All simulated time is expressed in **seconds** (floats); all sizes in
**bytes** (ints).  These helpers exist so that experiment definitions read
like the paper ("128 user partitions of 4 KiB", "delta of 35 us") instead
of raw powers of two.
"""

from __future__ import annotations

# -- byte sizes -------------------------------------------------------------

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB


def kib(n: float) -> int:
    """``n`` kibibytes as an integer byte count."""
    return int(n * KiB)


def mib(n: float) -> int:
    """``n`` mebibytes as an integer byte count."""
    return int(n * MiB)


def gib(n: float) -> int:
    """``n`` gibibytes as an integer byte count."""
    return int(n * GiB)


# -- time -------------------------------------------------------------------

SECOND: float = 1.0
MILLISECOND: float = 1e-3
MICROSECOND: float = 1e-6
NANOSECOND: float = 1e-9


def ms(n: float) -> float:
    """``n`` milliseconds in seconds."""
    return n * MILLISECOND


def us(n: float) -> float:
    """``n`` microseconds in seconds."""
    return n * MICROSECOND


def ns(n: float) -> float:
    """``n`` nanoseconds in seconds."""
    return n * NANOSECOND


# -- formatting --------------------------------------------------------------


def fmt_bytes(nbytes: int) -> str:
    """Human-readable byte count using binary units, e.g. ``'128KiB'``.

    Sizes that are not an exact multiple of a unit get one decimal place.
    """
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    for unit, name in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if nbytes >= unit:
            value = nbytes / unit
            if value == int(value):
                return f"{int(value)}{name}"
            return f"{value:.1f}{name}"
    return f"{nbytes}B"


def fmt_time(seconds: float) -> str:
    """Human-readable duration, e.g. ``'35us'``, ``'1.5ms'``, ``'2s'``."""
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    for unit, name in ((1.0, "s"), (MILLISECOND, "ms"), (MICROSECOND, "us")):
        if seconds >= unit:
            value = seconds / unit
            if abs(value - round(value)) < 1e-9:
                return f"{int(round(value))}{name}"
            return f"{value:.3g}{name}"
    if seconds == 0:
        return "0s"
    return f"{seconds / NANOSECOND:.3g}ns"


def fmt_rate(bytes_per_second: float) -> str:
    """Human-readable bandwidth, e.g. ``'11.6GiB/s'``."""
    if bytes_per_second < 0:
        raise ValueError(f"negative rate: {bytes_per_second}")
    for unit, name in ((GiB, "GiB/s"), (MiB, "MiB/s"), (KiB, "KiB/s")):
        if bytes_per_second >= unit:
            return f"{bytes_per_second / unit:.3g}{name}"
    return f"{bytes_per_second:.3g}B/s"


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= ``n`` (n must be positive)."""
    if n <= 0:
        raise ValueError(f"need positive n, got {n}")
    return 1 << (n - 1).bit_length()


def powers_of_two(lo: int, hi: int) -> list[int]:
    """All powers of two ``p`` with ``lo <= p <= hi`` (inclusive)."""
    if lo <= 0:
        raise ValueError(f"need positive lo, got {lo}")
    out = []
    p = 1
    while p < lo:
        p <<= 1
    while p <= hi:
        out.append(p)
        p <<= 1
    return out
