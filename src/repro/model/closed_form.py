"""Closed-form PLogGP expressions for the regimes the paper discusses.

The recurrence in :mod:`repro.model.ploggp` handles arbitrary arrival
patterns; in the two regimes the paper reasons about, it collapses to
closed forms that make the trade-offs legible (and are property-tested
against the recurrence):

* **Simultaneous arrival** (the no-noise overhead benchmark): every
  transport partition is ready at t=0; posts serialize at ``o_s`` and
  the wire admits one message per ``max(g, G·k)``.
* **Many-before-one with a wide delay window**: the n−1 early transport
  partitions clear the wire inside the laggard's delay, so completion
  is the laggard's chunk plus the deferred receiver drain — the
  ``G·S/P + P·o_r`` trade-off whose optimum is Table I's
  ``P* ≈ sqrt(G·S / o_r)``.
"""

from __future__ import annotations

import math

from repro.model.loggp import LogGPParams


def simultaneous_completion(p: LogGPParams, total_bytes: int,
                            n_transport: int) -> float:
    """Closed form for all partitions ready at t=0.

    ``o_s + (P-1)·max(o_s, gap) + gap·[last injection] ...`` — written
    out: injections start every ``max(o_s, gap)`` after the first post,
    where ``gap = max(g, G·k)``; the last message lands ``G·k + L``
    after its injection and the receiver drains ``P·o_r``.
    """
    k = total_bytes // n_transport
    wire_each = k * p.G
    gap = max(p.g, wire_each)
    step = max(p.o_s, gap)
    last_inject = p.o_s + (n_transport - 1) * step
    return last_inject + wire_each + p.L + n_transport * p.o_r


def wide_window_completion(p: LogGPParams, total_bytes: int,
                           n_transport: int, delay: float) -> float:
    """Closed form for many-before-one when the window is wide.

    Valid when the n−1 early chunks clear the wire before the laggard
    arrives (``early_bird_clears`` below); then
    ``T = delay + o_s + G·S/P + L + P·o_r``.
    """
    k = total_bytes // n_transport
    return delay + p.o_s + k * p.G + p.L + n_transport * p.o_r


def early_bird_clears(p: LogGPParams, total_bytes: int,
                      n_transport: int, delay: float) -> bool:
    """Whether the early chunks' wire time fits inside the delay."""
    if n_transport == 1:
        return True
    k = total_bytes // n_transport
    gap = max(p.g, k * p.G)
    # (P-1) early messages injected max(o_s, gap) apart after the first
    # post, finishing k·G later each.
    last_early_done = p.o_s + (n_transport - 2) * max(p.o_s, gap) + gap
    return last_early_done <= delay


def optimal_partitions_sqrt_rule(p: LogGPParams, total_bytes: int) -> float:
    """The continuous optimum of ``G·S/P + P·o_r``: ``sqrt(G·S/o_r)``.

    Table I is this, floored to the nearest power of two and clamped to
    [1, 32] — the signature the generated table exhibits.
    """
    if p.o_r == 0:
        return float("inf")
    return math.sqrt(total_bytes * p.G / p.o_r)
