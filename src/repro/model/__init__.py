"""LogGP / PLogGP analytic models (paper Section II-C).

:mod:`repro.model.loggp` holds the classic LogGP parameter set and
point-to-point cost functions; :mod:`repro.model.ploggp` extends them to
partitioned communication with arrival patterns (the PLogGP model of
Schonbein et al. the paper uses for its aggregators);
:mod:`repro.model.tables` regenerates the paper's Table I;
:mod:`repro.model.netgauge` measures LogGP parameters on the simulated
fabric the way the paper used Netgauge on Niagara.
"""

from repro.model.loggp import LogGPParams, LogGPTable, ptp_time, back_to_back_time
from repro.model.arrival import (
    simultaneous,
    many_before_one,
    uniform_stagger,
    one_before_many,
)
from repro.model.ploggp import (
    PLogGPResult,
    completion_time,
    transport_ready_times,
    optimal_transport_partitions,
    model_curve,
)
from repro.model.tables import NIAGARA_LOGGP, generate_table1, TABLE1_PAPER
from repro.model.closed_form import (
    simultaneous_completion,
    wide_window_completion,
    early_bird_clears,
    optimal_partitions_sqrt_rule,
)

__all__ = [
    "LogGPParams",
    "LogGPTable",
    "ptp_time",
    "back_to_back_time",
    "simultaneous",
    "many_before_one",
    "uniform_stagger",
    "one_before_many",
    "PLogGPResult",
    "completion_time",
    "transport_ready_times",
    "optimal_transport_partitions",
    "model_curve",
    "NIAGARA_LOGGP",
    "generate_table1",
    "TABLE1_PAPER",
    "simultaneous_completion",
    "wide_window_completion",
    "early_bird_clears",
    "optimal_partitions_sqrt_rule",
]
