"""Netgauge-style LogGP parameter measurement on the simulated fabric.

The paper used Netgauge's **MPI module** to measure Niagara's LogGP
parameters and fed them to the PLogGP model (Section III).  This module
does the same against the simulator: ping-pong and streaming
experiments through the MPI point-to-point path yield a per-size
:class:`~repro.model.loggp.LogGPTable` that can drive the live
:class:`~repro.core.aggregators.PLogGPAggregator`.

An "ib" mode measuring at the verbs level is also provided — the
equivalent of the Netgauge InfiniBand module the authors could not get
working on their platform.

Methodology (documented approximations, in the spirit of Hoefler's
low-overhead LogGP assessment):

* one-way time ``t1(s)`` = half the ping-pong round trip;
* ``G(s)`` from the local slope of ``t1`` between ``s`` and ``2s``;
* ``g(s)`` from a streaming burst: arrival spacing at the receiver;
* ``o_r(s)`` from a queued drain: ``n`` messages pile up while the
  receiver is busy, then the receiver times draining them;
* ``o_s(s)`` = the non-wire part of the injection gap;
* ``L`` = small-message one-way time minus the measured overheads.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import ClusterConfig, NIAGARA
from repro.mem.buffer import Buffer
from repro.model.loggp import LogGPParams, LogGPTable
from repro.mpi.cluster import Cluster
from repro.units import KiB, MiB


DEFAULT_SIZES = [64, 256, 1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB,
                 256 * KiB, 1 * MiB, 4 * MiB]


def _pingpong(cluster: Cluster, a, b, nbytes: int, rounds: int) -> float:
    """Mean round-trip time for ``nbytes`` messages."""
    sbuf = Buffer(max(nbytes, 1), backed=False)
    rbuf = Buffer(max(nbytes, 1), backed=False)
    times: list[float] = []

    def ping(proc):
        for r in range(rounds):
            t0 = proc.env.now
            yield from proc.send(sbuf, dest=b.rank, tag=100 + r, nbytes=nbytes)
            yield from proc.recv(rbuf, source=b.rank, tag=200 + r, nbytes=nbytes)
            times.append(proc.env.now - t0)

    def pong(proc):
        for r in range(rounds):
            yield from proc.recv(rbuf, source=a.rank, tag=100 + r, nbytes=nbytes)
            yield from proc.send(sbuf, dest=a.rank, tag=200 + r, nbytes=nbytes)

    p1 = cluster.spawn(ping(a))
    p2 = cluster.spawn(pong(b))
    cluster.run(until=cluster.env.all_of([p1, p2]))
    warm = times[1:] if len(times) > 1 else times
    return sum(warm) / len(warm)


def _stream_gap(cluster: Cluster, a, b, nbytes: int, count: int) -> float:
    """Mean inter-arrival spacing of a burst at the receiver."""
    sbuf = Buffer(max(nbytes, 1), backed=False)
    rbufs = [Buffer(max(nbytes, 1), backed=False) for _ in range(count)]
    arrivals: list[float] = []

    def sender(proc):
        reqs = [proc.isend(sbuf, dest=b.rank, tag=300 + i, nbytes=nbytes)
                for i in range(count)]
        yield from proc.wait_all(reqs)

    def receiver(proc):
        reqs = [proc.irecv(rbufs[i], source=a.rank, tag=300 + i, nbytes=nbytes)
                for i in range(count)]
        for req in reqs:
            yield from proc.wait(req)
            arrivals.append(req.completed_at)

    p1 = cluster.spawn(sender(a))
    p2 = cluster.spawn(receiver(b))
    cluster.run(until=cluster.env.all_of([p1, p2]))
    spacings = [b2 - a2 for a2, b2 in zip(arrivals, arrivals[1:])]
    return sum(spacings) / len(spacings)


def _drain_cost(cluster: Cluster, a, b, nbytes: int, count: int) -> float:
    """Per-message receiver drain cost for queued messages."""
    sbuf = Buffer(max(nbytes, 1), backed=False)
    rbufs = [Buffer(max(nbytes, 1), backed=False) for _ in range(count)]
    measured: list[float] = []

    def sender(proc):
        reqs = [proc.isend(sbuf, dest=b.rank, tag=400 + i, nbytes=nbytes)
                for i in range(count)]
        yield from proc.wait_all(reqs)

    def receiver(proc):
        reqs = [proc.irecv(rbufs[i], source=a.rank, tag=400 + i, nbytes=nbytes)
                for i in range(count)]
        # Sleep long enough for every message to be on (or through) the
        # wire, so draining measures pure receiver-side processing.
        yield 0.2
        t0 = proc.env.now
        yield from proc.wait_all(reqs)
        measured.append((proc.env.now - t0) / count)

    p1 = cluster.spawn(sender(a))
    p2 = cluster.spawn(receiver(b))
    cluster.run(until=cluster.env.all_of([p1, p2]))
    return measured[0]


def measure_loggp(
    sizes: Optional[Sequence[int]] = None,
    config: Optional[ClusterConfig] = None,
    rounds: int = 10,
    burst: int = 16,
) -> LogGPTable:
    """Measure a per-size LogGP table through the simulated MPI path."""
    sizes = list(sizes) if sizes is not None else list(DEFAULT_SIZES)
    config = config if config is not None else NIAGARA
    cluster = Cluster(n_nodes=2, config=config)
    a, b = cluster.ranks(2)
    entries: dict[int, LogGPParams] = {}
    for s in sizes:
        t1 = _pingpong(cluster, a, b, s, rounds) / 2
        t2 = _pingpong(cluster, a, b, 2 * s, rounds) / 2
        G = max((t2 - t1) / s, 1e-15)
        g = _stream_gap(cluster, a, b, s, burst)
        o_r = _drain_cost(cluster, a, b, s, burst)
        wire = s * G
        o_s = max(g - wire, 1e-9)
        L = max(t1 - o_s - o_r - wire, 1e-9)
        entries[s] = LogGPParams(L=L, o_s=o_s, o_r=o_r, g=g, G=G)
    return LogGPTable(entries)
