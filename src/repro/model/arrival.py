"""User-partition arrival patterns for the PLogGP model.

Each function returns the times at which the ``n`` user partitions are
marked ready (``MPI_Pready`` times), as a list of ``n`` floats.  The
paper focuses on **many-before-one** — all but one thread finish
simultaneously and one laggard is delayed (Section IV-C) — matching the
"single thread delay model" its benchmarks inject.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _check_n(n: int) -> None:
    if n < 1:
        raise ValueError(f"need at least one partition, got {n}")


def simultaneous(n: int) -> list[float]:
    """All partitions ready at t=0 (the no-noise overhead benchmark)."""
    _check_n(n)
    return [0.0] * n


def many_before_one(n: int, delay: float, laggard: Optional[int] = None) -> list[float]:
    """All ready at 0 except one laggard ready at ``delay``.

    ``laggard`` defaults to the last partition.
    """
    _check_n(n)
    if delay < 0:
        raise ValueError(f"negative delay: {delay}")
    if laggard is None:
        laggard = n - 1
    if not (0 <= laggard < n):
        raise ValueError(f"laggard index {laggard} outside [0, {n})")
    times = [0.0] * n
    times[laggard] = delay
    return times


def one_before_many(n: int, delay: float, early: int = 0) -> list[float]:
    """One partition ready at 0, the rest at ``delay``."""
    _check_n(n)
    if delay < 0:
        raise ValueError(f"negative delay: {delay}")
    if not (0 <= early < n):
        raise ValueError(f"early index {early} outside [0, {n})")
    times = [delay] * n
    times[early] = 0.0
    return times


def uniform_stagger(n: int, spread: float) -> list[float]:
    """Partitions ready at evenly spaced times across ``spread``."""
    _check_n(n)
    if spread < 0:
        raise ValueError(f"negative spread: {spread}")
    if n == 1:
        return [0.0]
    return list(np.linspace(0.0, spread, n))


def random_stagger(n: int, spread: float, rng: np.random.Generator) -> list[float]:
    """Partitions ready at uniform-random times in [0, spread]."""
    _check_n(n)
    if spread < 0:
        raise ValueError(f"negative spread: {spread}")
    return list(rng.uniform(0.0, spread, size=n))
