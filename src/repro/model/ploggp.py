"""The Partitioned LogGP (PLogGP) model.

Extends LogGP to a buffer of ``total_bytes`` split into ``n_transport``
equal transport partitions whose readiness is driven by user-partition
arrival times (paper Section II-C; model of Schonbein et al. [18]).

The cost recurrence mirrors the paper's single-threaded runtime design:

* a transport partition becomes ready when the *last* user partition
  mapped to it arrives;
* posts are serialized on the sending process (``o_s`` each, in
  readiness order);
* the wire admits at most one message at a time, with at least
  ``max(g, G*k)`` between injection starts;
* each message's last byte lands ``G*k + L`` after injection;
* the receiver drains all per-message completions (``o_r`` each) when
  it completes the partitioned request.  Deferring the drain reflects
  the evaluated workloads: receiver threads are busy with their own
  compute phase while messages arrive, and the single-threaded progress
  engine only runs when the application calls ``MPI_Wait``/``Test``
  (Section IV-A).  This term is what penalizes high partition counts
  for small messages (Fig. 3's ordering).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

from repro.model.arrival import many_before_one
from repro.model.loggp import LogGPParams, LogGPTable
from repro.units import is_power_of_two, powers_of_two

ParamsLike = Union[LogGPParams, LogGPTable]


def _params_for(params: ParamsLike, nbytes: int) -> LogGPParams:
    if isinstance(params, LogGPTable):
        return params.lookup(nbytes)
    return params


def transport_ready_times(user_ready: Sequence[float], n_transport: int) -> list[float]:
    """Readiness time of each transport partition.

    User partitions are grouped contiguously and aligned on
    ``n_user / n_transport`` boundaries (paper Section IV-C); a group is
    ready when its slowest member is.
    """
    n_user = len(user_ready)
    if n_transport < 1 or n_transport > n_user:
        raise ValueError(
            f"n_transport must be in [1, {n_user}], got {n_transport}"
        )
    if n_user % n_transport != 0:
        raise ValueError(
            f"{n_transport} transport partitions do not evenly divide "
            f"{n_user} user partitions"
        )
    group = n_user // n_transport
    return [
        max(user_ready[i * group : (i + 1) * group])
        for i in range(n_transport)
    ]


@dataclass(frozen=True)
class PLogGPResult:
    """Outcome of one PLogGP evaluation."""

    total_bytes: int
    n_transport: int
    completion_time: float
    #: Arrival time of each transport partition's last byte at the receiver.
    arrivals: tuple[float, ...]
    #: Injection start of each transport partition.
    injections: tuple[float, ...]


def completion_time(
    params: ParamsLike,
    total_bytes: int,
    n_transport: int,
    user_ready: Sequence[float],
    deferred_drain: bool = True,
) -> PLogGPResult:
    """Modelled time to complete a partitioned transfer.

    Parameters
    ----------
    params:
        LogGP parameters, possibly size-keyed (looked up at the
        *transport* partition size, as the paper's per-size hash table).
    total_bytes:
        Aggregate message size.
    n_transport:
        Number of equal transport partitions.
    user_ready:
        ``MPI_Pready`` time of each user partition.
    deferred_drain:
        Charge the receiver's per-message ``o_r`` at the end (see module
        docstring).  With ``False``, ``o_r`` is charged per message on
        arrival, overlapping earlier messages' handling with later
        messages' flight.
    """
    if total_bytes < 0:
        raise ValueError(f"negative total_bytes: {total_bytes}")
    ready = transport_ready_times(user_ready, n_transport)
    k = total_bytes // n_transport
    p = _params_for(params, max(k, 1))
    order = sorted(range(n_transport), key=lambda i: (ready[i], i))
    sender_free = 0.0
    wire_free = 0.0
    recv_free = 0.0
    injections = [0.0] * n_transport
    arrivals = [0.0] * n_transport
    wire_each = k * p.G
    gap = max(p.g, wire_each)
    for i in order:
        post_start = max(ready[i], sender_free)
        sender_free = post_start + p.o_s
        inject = max(sender_free, wire_free)
        wire_free = inject + gap
        injections[i] = inject
        arrivals[i] = inject + wire_each + p.L
    last_arrival = max(arrivals)
    if deferred_drain:
        total = last_arrival + n_transport * p.o_r
    else:
        for i in order:
            recv_free = max(recv_free, arrivals[i]) + p.o_r
        total = recv_free
    return PLogGPResult(
        total_bytes=total_bytes,
        n_transport=n_transport,
        completion_time=total,
        arrivals=tuple(arrivals),
        injections=tuple(injections),
    )


def optimal_transport_partitions(
    params: ParamsLike,
    total_bytes: int,
    n_user: int,
    delay: float,
    max_transport: int = 32,
    deferred_drain: bool = True,
    pattern=None,
) -> int:
    """The power-of-two transport count minimizing modelled completion.

    Mirrors the paper's optimizer (Section IV-C): iterate power-of-two
    transport counts bounded by ``min(n_user, max_transport)`` under the
    many-before-one arrival pattern with the given ``delay``, and never
    exceed the user's requested partition count.

    ``pattern`` overrides the arrival model: a callable
    ``pattern(n_user, delay) -> ready times`` (the PLogGP paper [18]
    analyses several; this paper focuses on many-before-one).
    """
    if not is_power_of_two(n_user):
        raise ValueError(f"n_user must be a power of two, got {n_user}")
    if max_transport < 1:
        raise ValueError(f"max_transport must be >= 1, got {max_transport}")
    if pattern is None:
        user_ready = many_before_one(n_user, delay)
    else:
        user_ready = pattern(n_user, delay)
        if len(user_ready) != n_user:
            raise ValueError(
                f"pattern produced {len(user_ready)} arrival times for "
                f"{n_user} partitions")
    best_p, best_t = 1, math.inf
    for n_transport in powers_of_two(1, min(n_user, max_transport)):
        t = completion_time(
            params, total_bytes, n_transport, user_ready,
            deferred_drain=deferred_drain,
        ).completion_time
        if t < best_t:
            best_p, best_t = n_transport, t
    return best_p


def model_curve(
    params: ParamsLike,
    sizes: Sequence[int],
    n_transport: int,
    n_user: int,
    delay: float,
    deferred_drain: bool = True,
) -> list[float]:
    """Completion times across ``sizes`` for a fixed transport count.

    Regenerates Fig. 3's per-partition-count curves.
    """
    user_ready = many_before_one(n_user, delay)
    return [
        completion_time(params, s, n_transport, user_ready,
                        deferred_drain=deferred_drain).completion_time
        for s in sizes
    ]
