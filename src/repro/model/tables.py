"""Regeneration of the paper's Table I.

Table I lists the optimal transport-partition count the PLogGP model
predicts per aggregate message size on Niagara:

====================  ====================
Aggregate size        Transport partitions
====================  ====================
< 256 KiB             1
512 KiB - 1 MiB       2
2 MiB - 4 MiB         4
8 MiB - 16 MiB        8
32 MiB - 64 MiB       16
> 128 MiB             32
====================  ====================

(i.e. optimal count ~ sqrt(size / 64 KiB), floored to a power of two —
the signature of trading per-message receiver overhead ``o_r * P``
against last-partition wire time ``G * S / P``.)

:data:`NIAGARA_LOGGP` is the LogGP parameter set standing in for the
paper's Netgauge measurements of Niagara through the Open MPI + UCX
stack.  ``o_r = 12 us`` reflects the measured per-message receive-path
cost through MPI (matching, protocol dispatch, rendezvous progression),
which is far above the raw verbs completion cost — and is precisely
what makes the model's optimum follow Table I's sqrt pattern.
"""

from __future__ import annotations

from repro.model.loggp import LogGPParams
from repro.model.ploggp import optimal_transport_partitions
from repro.units import KiB, MiB, us

#: Stand-in for the paper's Netgauge-measured Niagara parameters
#: (MPI transport; see module docstring for why o_r dominates).
NIAGARA_LOGGP = LogGPParams(
    L=us(1.2),
    o_s=us(3.0),
    o_r=us(12.0),
    g=us(2.0),
    G=1.0 / (11.6 * 1024**3),
)

#: Laggard delay used when generating the table: one full compute phase
#: of the workloads the paper targets (100 ms; Section V-A's compute
#: amounts), so early-bird transmission is never wire-limited.
TABLE1_DELAY = 100e-3

#: The paper's published Table I, as (size -> transport partitions),
#: expanded to every power-of-two size it covers.
TABLE1_PAPER: dict[int, int] = {
    64 * KiB: 1,
    128 * KiB: 1,
    256 * KiB: 1,
    512 * KiB: 2,
    1 * MiB: 2,
    2 * MiB: 4,
    4 * MiB: 4,
    8 * MiB: 8,
    16 * MiB: 8,
    32 * MiB: 16,
    64 * MiB: 16,
    128 * MiB: 32,
    256 * MiB: 32,
}


def generate_table1(
    params: LogGPParams = NIAGARA_LOGGP,
    delay: float = TABLE1_DELAY,
    n_user: int = 32,
    sizes: list[int] | None = None,
) -> dict[int, int]:
    """Run the PLogGP optimizer across Table I's size range.

    Returns {aggregate size: optimal transport partitions}.
    """
    if sizes is None:
        sizes = sorted(TABLE1_PAPER)
    return {
        size: optimal_transport_partitions(
            params, size, n_user=n_user, delay=delay, max_transport=32)
        for size in sizes
    }
