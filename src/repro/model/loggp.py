"""The classic LogGP model (Alexandrov et al., 1997).

Parameters:

* ``L`` — network latency;
* ``o_s`` / ``o_r`` — sender / receiver processor overhead per message;
* ``g`` — minimum gap between successive message injections;
* ``G`` — time per byte for long messages (1 / bandwidth);

The paper measures these with Netgauge's MPI module and feeds them to
the PLogGP extension (Section III).  Because measured values vary with
message size (protocol switches), a :class:`LogGPTable` keyed by
message size mirrors the paper's "hash table where the key is the
message size and the value is the set of LogGP parameters"
(Section IV-C).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class LogGPParams:
    """One LogGP parameter set.  Times in seconds, G in seconds/byte."""

    L: float
    o_s: float
    o_r: float
    g: float
    G: float

    def __post_init__(self):
        if min(self.L, self.o_s, self.o_r, self.g, self.G) < 0:
            raise ConfigError(f"LogGP parameters must be non-negative: {self}")

    @property
    def bandwidth(self) -> float:
        """Asymptotic bandwidth in bytes/second."""
        if self.G == 0:
            return float("inf")
        return 1.0 / self.G

    def scaled(self, factor: float) -> "LogGPParams":
        """All overheads (not G, not L) scaled by ``factor``."""
        return LogGPParams(self.L, self.o_s * factor, self.o_r * factor,
                           self.g * factor, self.G)


def ptp_time(p: LogGPParams, nbytes: int) -> float:
    """LogGP time for one point-to-point message of ``nbytes``.

    ``o_s + (k-1)G + L + o_r`` — the standard long-message form.
    """
    if nbytes < 0:
        raise ValueError(f"negative message size: {nbytes}")
    wire = max(0, nbytes - 1) * p.G
    return p.o_s + wire + p.L + p.o_r


def back_to_back_time(p: LogGPParams, nbytes: int, count: int) -> float:
    """Time for ``count`` back-to-back messages of ``nbytes`` each.

    Generalizes the paper's Fig. 2 (two messages):
    ``o_s + count*G(k-1) + (count-1)*max(g, o_s, o_r) + L + o_r``.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    wire_each = max(0, nbytes - 1) * p.G
    gap = max(p.g, p.o_s, p.o_r)
    return p.o_s + count * wire_each + (count - 1) * gap + p.L + p.o_r


class LogGPTable:
    """Message-size-keyed LogGP parameters.

    Lookup returns the entry for the largest key not exceeding the
    requested size (sizes below the smallest key use the smallest).
    """

    def __init__(self, entries: dict[int, LogGPParams]):
        if not entries:
            raise ConfigError("LogGPTable needs at least one entry")
        for size in entries:
            if size <= 0:
                raise ConfigError(f"table keys must be positive sizes, got {size}")
        self._sizes = sorted(entries)
        self._entries = dict(entries)

    @classmethod
    def constant(cls, params: LogGPParams) -> "LogGPTable":
        """A table that returns ``params`` for every size."""
        return cls({1: params})

    def lookup(self, nbytes: int) -> LogGPParams:
        """Parameters applicable to a message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        idx = bisect.bisect_right(self._sizes, nbytes) - 1
        if idx < 0:
            idx = 0
        return self._entries[self._sizes[idx]]

    @property
    def sizes(self) -> list[int]:
        return list(self._sizes)

    def __len__(self) -> int:
        return len(self._sizes)

    def __repr__(self) -> str:
        return f"<LogGPTable sizes={self._sizes}>"
