"""Terminal visualization: unicode charts for experiment results.

Pure-text renderings used by the CLI (``--chart``) and examples; no
plotting dependency.  Three forms:

* :func:`bar_chart` — horizontal bars for one series;
* :func:`grouped_bars` — several named series side by side (the shape
  of the paper's speedup figures);
* :func:`timeline` — wire-occupancy strips from trace chunk data
  (the Fig. 10/11 arrival-window picture, in one terminal row).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(fraction: float, width: int) -> str:
    """A left-aligned bar of ``fraction`` of ``width`` cells."""
    fraction = max(0.0, min(1.0, fraction))
    cells = fraction * width
    full = int(cells)
    rem = cells - full
    partial = _BLOCKS[round(rem * 8)] if full < width else ""
    return "█" * full + partial


def bar_chart(values: Mapping[str, float], width: int = 40,
              unit: str = "", reference: Optional[float] = None) -> str:
    """Horizontal bars, scaled to the largest value.

    ``reference`` draws a marker column (e.g. the single-thread line of
    Fig. 9) at its position.
    """
    if not values:
        return "(no data)"
    peak = max(max(values.values()), reference or 0.0)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(k)) for k in values)
    lines = []
    for name, value in values.items():
        bar = _bar(value / peak, width)
        line = f"{str(name):>{label_width}} |{bar:<{width}}| " \
               f"{value:g}{unit}"
        if reference is not None and reference > 0:
            pos = min(width - 1, int(reference / peak * width))
            body = list(line[label_width + 2 : label_width + 2 + width])
            if body[pos] == " ":
                body[pos] = "┆"
                line = (line[: label_width + 2] + "".join(body)
                        + line[label_width + 2 + width:])
        lines.append(line)
    return "\n".join(lines)


def grouped_bars(series: Mapping[str, Mapping[str, float]],
                 width: int = 32, unit: str = "x") -> str:
    """Rows = outer keys (e.g. sizes); one bar per inner series."""
    if not series:
        return "(no data)"
    peak = max((v for row in series.values() for v in row.values()),
               default=1.0)
    if peak <= 0:
        peak = 1.0
    names = []
    for row in series.values():
        for name in row:
            if name not in names:
                names.append(name)
    row_width = max(len(str(k)) for k in series)
    name_width = max(len(str(n)) for n in names)
    lines = []
    for row_key, row in series.items():
        for i, name in enumerate(names):
            value = row.get(name)
            label = str(row_key) if i == 0 else ""
            if value is None:
                continue
            bar = _bar(value / peak, width)
            lines.append(
                f"{label:>{row_width}} {str(name):>{name_width}} "
                f"|{bar:<{width}}| {value:.2f}{unit}")
        lines.append("")
    return "\n".join(lines).rstrip()


def timeline(intervals: Sequence[tuple[float, float]],
             t_end: Optional[float] = None, width: int = 72,
             marker: Optional[float] = None) -> str:
    """One-row occupancy strip: █ busy, · idle, ▼ marker position.

    ``intervals`` are (start, end) busy spans (e.g. from
    :func:`repro.analysis.chunk_timeline`); ``marker`` places an event
    (the laggard's arrival) above the strip.
    """
    if not intervals and t_end is None:
        return "(no data)"
    t_max = t_end if t_end is not None else max(e for _, e in intervals)
    if t_max <= 0:
        t_max = 1.0
    cells = [0.0] * width
    for start, end in intervals:
        first = int(start / t_max * width)
        last = int(end / t_max * width)
        for i in range(max(0, first), min(width, last + 1)):
            lo = max(start, i * t_max / width)
            hi = min(end, (i + 1) * t_max / width)
            cells[i] += max(0.0, hi - lo) / (t_max / width)
    strip = "".join(
        "█" if c > 0.66 else ("▓" if c > 0.33 else ("░" if c > 0.01 else "·"))
        for c in cells)
    lines = []
    if marker is not None and 0 <= marker <= t_max:
        pos = min(width - 1, int(marker / t_max * width))
        lines.append(" " * pos + "▼")
    lines.append(strip)
    return "\n".join(lines)
