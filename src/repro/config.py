"""Cost-model configuration for the simulated platform.

All virtual-time constants of the simulation live here, grouped per
subsystem.  The defaults (:data:`NIAGARA`) are calibrated to an
EDR-InfiniBand / ConnectX-5 / dual-socket-Skylake platform like the
Niagara supercomputer the paper evaluates on:

* EDR line rate 100 Gb/s, ~11.6 GiB/s effective payload bandwidth;
* ~1 us end-to-end small-message latency through a Dragonfly+ fabric;
* a single QP cannot saturate the line (inter-WQE pipeline stalls), a
  well-known ConnectX property the paper leans on in Fig. 7;
* at most 16 outstanding RDMA work requests per QP (Section IV-A);
* per-message software costs of the Open MPI + UCX baseline in the
  low-microsecond range, with the eager-bcopy / eager-zcopy /
  rendezvous switch points of UCX 1.12 (1 KiB and 8 KiB thresholds for
  the bcopy/zcopy switch the paper calls out in Section V-B2).

These are *shape* calibrations: the reproduction targets who-wins-where
and crossover locations, not the absolute microseconds of the authors'
testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError
from repro.units import KiB, MiB, us, ns


@dataclass(frozen=True)
class NICConfig:
    """Simulated HCA (ConnectX-5-like) parameters."""

    #: Effective payload bandwidth of the link in bytes/second (EDR).
    line_rate: float = 11.6 * 1024**3
    #: Max injection rate of a single QP, bytes/second.  Slightly below
    #: line rate: a lone QP cannot quite saturate the wire (DMA-read
    #: pipeline stalls), which drives Fig. 7's QP effect.
    qp_rate: float = 0.85 * 11.6 * 1024**3
    #: Maximum transmission unit in bytes (the paper tunes at 4 KiB).
    mtu: int = 4 * KiB
    #: Physical ports (rails) on the HCA.  Each port is an independent
    #: wire: its own egress serializer and ingress pipe at the full
    #: line rate.  QPs bind a port at creation; the engine layer builds
    #: one :class:`~repro.engine.rail.Rail` per port, so a dual-port
    #: (2-rail) run is this one knob.
    n_ports: int = 1
    #: Engine time to fetch + parse one WQE and program the DMA.
    #: Pipelined with transmission of the previous WQE on the same QP.
    t_wqe: float = ns(150)
    #: Per-MTU-packet processing time on the engine.
    t_pkt: float = ns(10)
    #: Time to write a CQE and make it visible to the host.
    t_cqe: float = ns(150)
    #: Hardware limit on concurrently outstanding RDMA WRs per QP.
    max_outstanding_rdma: int = 16
    #: Total QPs supported (262,144 on ConnectX-5 per the paper).
    max_qps: int = 262_144
    #: Chunk size at which large WQEs timeshare the wire.  Large
    #: transmissions are broken into chunks so concurrent QPs interleave
    #: (approximates per-packet VL arbitration without per-packet events).
    wire_chunk: int = 256 * KiB
    #: Default RC transport-retry budget per QP (``IBV_QP_RETRY_CNT``):
    #: retransmissions after an ACK timeout before the WR completes with
    #: ``RETRY_EXC_ERR`` and the QP drops to ERROR.
    retry_cnt: int = 7
    #: Default RNR NAK retry budget per QP (``IBV_QP_RNR_RETRY``).  Per
    #: the IB spec the value 7 means retry forever.
    rnr_retry: int = 7
    #: Default local-ACK-timeout *exponent* per QP (``IBV_QP_TIMEOUT``):
    #: the first retransmission fires ``4.096 us x 2**qp_timeout`` after
    #: the message went on the wire, and each further retry doubles the
    #: wait — IB's exponential timeout semantics.
    qp_timeout: int = 4
    #: Time a requester backs off after an RNR NAK before retrying
    #: (models the ``IBV_QP_MIN_RNR_TIMER`` the responder advertises).
    rnr_timer: float = us(10)

    @property
    def ack_timeout(self) -> float:
        """Base local ACK timeout in seconds (4.096 us x 2^qp_timeout)."""
        return 4.096e-6 * (1 << self.qp_timeout)

    def validate(self) -> None:
        if self.line_rate <= 0 or self.qp_rate <= 0:
            raise ConfigError("rates must be positive")
        if self.qp_rate > self.line_rate:
            raise ConfigError("qp_rate cannot exceed line_rate")
        if self.mtu < 256:
            raise ConfigError(f"mtu too small: {self.mtu}")
        if self.n_ports < 1:
            raise ConfigError("n_ports must be >= 1")
        if self.max_outstanding_rdma < 1:
            raise ConfigError("max_outstanding_rdma must be >= 1")
        if self.wire_chunk < self.mtu:
            raise ConfigError("wire_chunk must be >= mtu")
        if min(self.t_wqe, self.t_pkt, self.t_cqe) < 0:
            raise ConfigError("times must be non-negative")
        if not (0 <= self.retry_cnt <= 7):
            raise ConfigError("retry_cnt must be a 3-bit value (0..7)")
        if not (0 <= self.rnr_retry <= 7):
            raise ConfigError("rnr_retry must be a 3-bit value (0..7)")
        if not (0 <= self.qp_timeout <= 31):
            raise ConfigError("qp_timeout must be a 5-bit exponent (0..31)")
        if self.rnr_timer < 0:
            raise ConfigError("rnr_timer must be non-negative")


@dataclass(frozen=True)
class LinkConfig:
    """Fabric propagation parameters (per one-way traversal)."""

    #: One-way propagation latency, cables + switch hops (Dragonfly+).
    latency: float = us(0.6)
    #: Extra one-way latency for intra-node (shared memory) transfers.
    loopback_latency: float = ns(200)

    def validate(self) -> None:
        if self.latency < 0 or self.loopback_latency < 0:
            raise ConfigError("latencies must be non-negative")


@dataclass(frozen=True)
class HostConfig:
    """Host CPU / software-path parameters."""

    #: Physical cores per node (Niagara: 40 Skylake cores).
    cores_per_node: int = 40
    #: CPU time for one ``ibv_post_send`` (WR build + doorbell MMIO).
    t_post: float = ns(300)
    #: CPU time for one ``ibv_poll_cq`` that returns a completion.
    t_poll_hit: float = ns(80)
    #: CPU time for one empty ``ibv_poll_cq``.
    t_poll_miss: float = ns(50)
    #: Serialized cost of one atomic add-and-fetch under contention
    #: (cache-line transfer across the dual-socket machine).  Drives
    #: arrival skew at high partition counts (paper Section V-C3 /
    #: Fig. 12) and is the common small-message cost that keeps the
    #: transport-partition count from mattering much below 8 KiB
    #: (Fig. 6).
    t_atomic: float = ns(150)
    #: Host memcpy bandwidth (bcopy protocol staging), bytes/second.
    memcpy_rate: float = 9.0 * 1024**3
    #: Multiplier on software costs when threads oversubscribe cores
    #: (128 threads on 40 cores in Fig. 8's 128-partition runs).
    oversubscription_penalty: float = 3.0

    def validate(self) -> None:
        if self.cores_per_node < 1:
            raise ConfigError("cores_per_node must be >= 1")
        if min(self.t_post, self.t_poll_hit, self.t_poll_miss, self.t_atomic) < 0:
            raise ConfigError("times must be non-negative")
        if self.memcpy_rate <= 0:
            raise ConfigError("memcpy_rate must be positive")
        if self.oversubscription_penalty < 1.0:
            raise ConfigError("oversubscription_penalty must be >= 1")


@dataclass(frozen=True)
class ProtocolCosts:
    """Per-message costs of one UCX protocol tier."""

    #: Protocol name (for traces and tests).
    name: str
    #: Sender-side CPU per message (protocol code on the calling thread).
    t_send: float
    #: Minimum spacing between successive injections through the stack
    #: (the LogGP ``g`` seen through MPI at this tier).
    gap: float
    #: Receiver progress-engine cost per message.
    t_recv: float
    #: Whether the payload is staged with a memcpy at the sender.
    copies: bool = False
    #: Whether an RTS/CTS handshake precedes the data.
    rendezvous: bool = False


@dataclass(frozen=True)
class UCXConfig:
    """Software cost model of the Open MPI + UCX baseline path.

    The ``part_persist`` module issues one internal point-to-point
    message per user partition through this stack.  Protocol selection
    by message size mirrors UCX 1.12 on EDR:

    * ``size <= inline_max``        -> inline/BlueFlame fast path (the
      small-message features the paper's native module deliberately
      does not use, Section IV-A);
    * ``size <= eager_bcopy_max``   -> eager/bcopy (staging copy);
    * ``size <= eager_zcopy_max``   -> eager/zcopy (no copy, costlier
      descriptor handling);
    * otherwise                     -> rendezvous (RTS/CTS handshake,
      then zero-copy RDMA).
    """

    #: Largest inline/BlueFlame message.
    inline_max: int = 256
    #: Largest eager/bcopy message (UCX switches at 1 KiB on this setup).
    eager_bcopy_max: int = 1 * KiB
    #: Largest eager/zcopy message before rendezvous.
    eager_zcopy_max: int = 8 * KiB
    t_inline: float = ns(150)
    gap_inline: float = ns(150)
    rx_inline: float = ns(100)
    t_eager_bcopy: float = ns(300)
    gap_bcopy: float = ns(400)
    rx_bcopy: float = ns(300)
    t_eager_zcopy: float = ns(600)
    gap_zcopy: float = ns(1000)
    rx_zcopy: float = ns(600)
    #: Rendezvous costs exclude the RTS/CTS round trip, charged as the
    #: handshake messages themselves.  Per-message rendezvous costs
    #: through MPI are in the low microseconds (matching, protocol
    #: dispatch, registration handling) — these are what partition
    #: aggregation amortizes in the paper's medium-message sweet spot.
    t_rndv: float = ns(2000)
    gap_rndv: float = ns(2000)
    rx_rndv: float = ns(1600)
    #: Data lanes (QPs) the endpoint stripes bulk messages across; UCX
    #: multi-path lets large transfers reach full line rate.
    n_lanes: int = 2

    def protocol_for(self, nbytes: int) -> ProtocolCosts:
        """The protocol tier UCX selects for a message of ``nbytes``."""
        if nbytes <= self.inline_max:
            return ProtocolCosts("inline", self.t_inline, self.gap_inline,
                                 self.rx_inline)
        if nbytes <= self.eager_bcopy_max:
            return ProtocolCosts("eager-bcopy", self.t_eager_bcopy,
                                 self.gap_bcopy, self.rx_bcopy, copies=True)
        if nbytes <= self.eager_zcopy_max:
            return ProtocolCosts("eager-zcopy", self.t_eager_zcopy,
                                 self.gap_zcopy, self.rx_zcopy)
        return ProtocolCosts("rndv", self.t_rndv, self.gap_rndv,
                             self.rx_rndv, rendezvous=True)

    def validate(self) -> None:
        if not (0 < self.inline_max <= self.eager_bcopy_max
                <= self.eager_zcopy_max):
            raise ConfigError("protocol thresholds must be ordered")
        times = (self.t_inline, self.gap_inline, self.rx_inline,
                 self.t_eager_bcopy, self.gap_bcopy, self.rx_bcopy,
                 self.t_eager_zcopy, self.gap_zcopy, self.rx_zcopy,
                 self.t_rndv, self.gap_rndv, self.rx_rndv)
        if min(times) < 0:
            raise ConfigError("times must be non-negative")
        if self.n_lanes < 1:
            raise ConfigError("n_lanes must be >= 1")


@dataclass(frozen=True)
class PartitionedConfig:
    """Tunables of the native-verbs partitioned module (Section IV)."""

    #: Default number of QPs when no aggregator overrides it.
    default_qps: int = 2
    #: delta for the timer-based aggregator, seconds (Section IV-D).
    timer_delta: float = us(35)
    #: Timer poll interval while a first-arriver sleeps on its flag.
    timer_poll: float = us(2)
    #: Per-WR receiver-side completion handling cost in the native
    #: module (cheaper than the UCX per-message path: no matching,
    #: no protocol dispatch — decode the immediate, set flags).
    t_rx_wr: float = ns(200)
    #: Back-off before a failed channel attempts its RESET -> INIT ->
    #: RTR -> RTS reconnect walk (models the out-of-band re-exchange).
    reconnect_delay: float = us(500)
    #: While a channel is degraded, downgrade aggregated posts toward
    #: per-partition sends (persistent-style) so each retransmission
    #: unit stays small.  Disable to keep the aggregation plan fixed
    #: across failures.
    degrade_on_fault: bool = True
    #: Consecutive per-edge failure events (retry exhaustions, deadline
    #: misses) that trip the edge's circuit breaker when a degradation
    #: ladder wraps the transport (:class:`repro.mpi.ladder.LadderSpec`).
    breaker_threshold: int = 3
    #: Clean rounds an edge must complete on a fallback rung before the
    #: ladder probes a promotion back toward the preferred transport.
    breaker_probation: int = 4
    #: Per-edge round deadline for the ladder's progress watchdog,
    #: seconds; a round finishing later counts as a breaker failure
    #: event.  ``None`` (the default) disables the watchdog entirely.
    watchdog_deadline: Optional[float] = None
    #: Wall deadline for one Start..Wait epoch (``wait_partitioned``),
    #: virtual seconds; overrunning it raises
    #: :class:`~repro.errors.EpochDeadlineError`.  ``None`` = off.
    epoch_deadline: Optional[float] = None

    def validate(self) -> None:
        if self.default_qps < 1:
            raise ConfigError("default_qps must be >= 1")
        if self.timer_delta < 0 or self.timer_poll <= 0:
            raise ConfigError("timer settings invalid")
        if self.t_rx_wr < 0:
            raise ConfigError("t_rx_wr must be non-negative")
        if self.reconnect_delay < 0:
            raise ConfigError("reconnect_delay must be non-negative")
        if self.breaker_threshold < 1:
            raise ConfigError("breaker_threshold must be >= 1")
        if self.breaker_probation < 1:
            raise ConfigError("breaker_probation must be >= 1")
        if self.watchdog_deadline is not None and self.watchdog_deadline <= 0:
            raise ConfigError("watchdog_deadline must be positive or None")
        if self.epoch_deadline is not None and self.epoch_deadline <= 0:
            raise ConfigError("epoch_deadline must be positive or None")


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the transport engine (:mod:`repro.engine`)."""

    #: Fallback park time while a progress wait has no kick pending —
    #: guards against a missing notification path ever deadlocking a
    #: wait.  Completion queues kick the engine on every push, so this
    #: only bounds the rare conditions with no notification hook;
    #: keeping it long keeps idle waits cheap.
    idle_fallback: float = us(100)
    #: Completions drained per ``ibv_poll_cq`` batch in the router's
    #: canonical polling loop.
    poll_batch: int = 16

    def validate(self) -> None:
        if self.idle_fallback <= 0:
            raise ConfigError(
                f"idle_fallback must be positive, got {self.idle_fallback}")
        if self.poll_batch < 1:
            raise ConfigError("poll_batch must be >= 1")


@dataclass(frozen=True)
class ClusterConfig:
    """Top-level simulation configuration."""

    nic: NICConfig = field(default_factory=NICConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    host: HostConfig = field(default_factory=HostConfig)
    ucx: UCXConfig = field(default_factory=UCXConfig)
    part: PartitionedConfig = field(default_factory=PartitionedConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    #: Root seed for all random streams.
    seed: int = 1
    #: Collect trace records (disable for large benchmark runs).
    trace_enabled: bool = False
    #: Allocate real numpy backing for message buffers.  Disable for
    #: huge sweeps where only timing matters.
    real_buffers: bool = True

    def validate(self) -> None:
        self.nic.validate()
        self.link.validate()
        self.host.validate()
        self.ucx.validate()
        self.part.validate()
        self.engine.validate()
        if self.seed < 0:
            raise ConfigError("seed must be >= 0")

    def with_changes(self, **kwargs) -> "ClusterConfig":
        """A copy with top-level fields replaced."""
        return replace(self, **kwargs)


#: Default calibration: Niagara-like EDR / ConnectX-5 / Skylake platform.
NIAGARA = ClusterConfig()


#: Environment knobs -> (section, field, parser).  The paper notes that
#: transport partitions are invisible to users "other than any
#: environment variables we create for fine-tuning of our library"
#: (Section IV-A); these are those variables.
_ENV_KNOBS = {
    "REPRO_TIMER_DELTA_US": ("part", "timer_delta", lambda v: float(v) * 1e-6),
    "REPRO_TIMER_POLL_US": ("part", "timer_poll", lambda v: float(v) * 1e-6),
    "REPRO_DEFAULT_QPS": ("part", "default_qps", int),
    "REPRO_LINE_RATE_GIBPS": ("nic", "line_rate",
                              lambda v: float(v) * 1024**3),
    "REPRO_QP_RATE_FRACTION": ("nic", "_qp_fraction", float),
    "REPRO_MTU": ("nic", "mtu", int),
    "REPRO_NIC_PORTS": ("nic", "n_ports", int),
    "REPRO_IDLE_FALLBACK_US": ("engine", "idle_fallback",
                               lambda v: float(v) * 1e-6),
    "REPRO_POLL_BATCH": ("engine", "poll_batch", int),
    "REPRO_WIRE_CHUNK": ("nic", "wire_chunk", int),
    "REPRO_RETRY_CNT": ("nic", "retry_cnt", int),
    "REPRO_RNR_RETRY": ("nic", "rnr_retry", int),
    "REPRO_QP_TIMEOUT": ("nic", "qp_timeout", int),
    "REPRO_RECONNECT_DELAY_US": ("part", "reconnect_delay",
                                 lambda v: float(v) * 1e-6),
    "REPRO_BREAKER_THRESHOLD": ("part", "breaker_threshold", int),
    "REPRO_BREAKER_PROBATION": ("part", "breaker_probation", int),
    "REPRO_WATCHDOG_DEADLINE_US": ("part", "watchdog_deadline",
                                   lambda v: float(v) * 1e-6),
    "REPRO_EPOCH_DEADLINE_US": ("part", "epoch_deadline",
                                lambda v: float(v) * 1e-6),
    "REPRO_LINK_LATENCY_US": ("link", "latency", lambda v: float(v) * 1e-6),
    "REPRO_CORES_PER_NODE": ("host", "cores_per_node", int),
    "REPRO_SEED": (None, "seed", int),
    "REPRO_TRACE": (None, "trace_enabled",
                    lambda v: v.lower() in ("1", "true", "yes")),
}


def config_from_env(base: ClusterConfig = NIAGARA,
                    environ: Optional[dict] = None) -> ClusterConfig:
    """A :class:`ClusterConfig` with ``REPRO_*`` overrides applied.

    ``environ`` defaults to ``os.environ``; pass a dict in tests.
    ``REPRO_QP_RATE_FRACTION`` scales ``qp_rate`` relative to the
    (possibly overridden) line rate.  Unknown ``REPRO_`` variables are
    ignored; malformed values raise :class:`~repro.errors.ConfigError`.
    """
    import os

    env = environ if environ is not None else os.environ
    sections: dict = {"nic": {}, "link": {}, "host": {}, "part": {},
                      "engine": {}}
    top: dict = {}
    qp_fraction = None
    for name, (section, fieldname, parse) in _ENV_KNOBS.items():
        raw = env.get(name)
        if raw is None:
            continue
        try:
            value = parse(raw)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"{name}={raw!r}: {exc}") from exc
        if fieldname == "_qp_fraction":
            qp_fraction = value
        elif section is None:
            top[fieldname] = value
        else:
            sections[section][fieldname] = value
    if sections["nic"] or qp_fraction is not None:
        nic_fields = dict(sections["nic"])
        line_rate = nic_fields.get("line_rate", base.nic.line_rate)
        if qp_fraction is not None:
            nic_fields["qp_rate"] = qp_fraction * line_rate
        elif "line_rate" in nic_fields:
            # Keep the calibrated qp/line ratio under a new line rate.
            ratio = base.nic.qp_rate / base.nic.line_rate
            nic_fields.setdefault("qp_rate", ratio * line_rate)
        top["nic"] = replace(base.nic, **nic_fields)
    if sections["link"]:
        top["link"] = replace(base.link, **sections["link"])
    if sections["host"]:
        top["host"] = replace(base.host, **sections["host"])
    if sections["part"]:
        top["part"] = replace(base.part, **sections["part"])
    if sections["engine"]:
        top["engine"] = replace(base.engine, **sections["engine"])
    config = base.with_changes(**top) if top else base
    config.validate()
    return config
