"""Plain-text tables for the figure-regeneration scripts."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.units import fmt_bytes, fmt_rate, fmt_time


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """A fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_speedup_series(series: Mapping[str, Mapping[int, float]]) -> str:
    """Message-size rows x named speedup columns (Fig. 6-8/14 layout)."""
    names = list(series)
    sizes = sorted({s for line in series.values() for s in line})
    headers = ["size"] + names
    rows = []
    for size in sizes:
        row = [fmt_bytes(size)]
        for name in names:
            value = series[name].get(size)
            row.append(f"{value:.2f}x" if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows)


def format_bandwidth_series(series: Mapping[str, Mapping[int, float]],
                            reference: float | None = None) -> str:
    """Perceived-bandwidth rows (Fig. 9/13 layout)."""
    names = list(series)
    sizes = sorted({s for line in series.values() for s in line})
    headers = ["size"] + names + (["1-thread line"] if reference else [])
    rows = []
    for size in sizes:
        row = [fmt_bytes(size)]
        for name in names:
            value = series[name].get(size)
            row.append(fmt_rate(value) if value is not None else "-")
        if reference:
            row.append(fmt_rate(reference))
        rows.append(row)
    return format_table(headers, rows)


def format_delta_table(table: Mapping[tuple[int, int], float]) -> str:
    """Fig. 12 layout: minimum delta per (size, partition count)."""
    counts = sorted({n for (_, n) in table})
    sizes = sorted({s for (s, _) in table})
    headers = ["size"] + [f"{n} parts" for n in counts]
    rows = []
    for size in sizes:
        row = [fmt_bytes(size)]
        for n in counts:
            value = table.get((size, n))
            row.append(fmt_time(value) if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows)
