"""Partitioned tree-collective micro-benchmark.

Times :class:`~repro.coll.tree.Pallreduce` rounds across a world of
ranks: every rank's worker threads ``Pready`` their contribution
partitions after a compute phase, and an iteration completes when the
reduced result has streamed back down to every leaf.  The per-edge
module choice (``part_persist`` baseline vs. native aggregation)
applies to every tree edge, so the benchmark isolates what aggregation
buys on the reduction's critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.config import ClusterConfig, NIAGARA
from repro.mem.buffer import PartitionedBuffer
from repro.mpi.cluster import Cluster
from repro.runtime import ComputePhase, SingleThreadDelay, WorkerTeam
from repro.sim.sync import SimBarrier


@dataclass
class PcollResult:
    """Tree-collective benchmark outcome."""

    world: int
    n_threads: int
    n_partitions: int
    partition_size: int
    compute: float
    times: list[float] = field(default_factory=list)

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times))

    @property
    def mean_comm_time(self) -> float:
        """Iteration time minus the (parallel) compute phase."""
        return float(np.mean([t - self.compute for t in self.times]))


def run_pallreduce(
    module=None,
    world: int = 8,
    n_threads: int = 4,
    n_partitions: Optional[int] = None,
    partition_size: int = 64 * 1024,
    compute: float = 1e-3,
    noise_fraction: float = 0.01,
    iterations: int = 5,
    warmup: int = 1,
    config: Optional[ClusterConfig] = None,
    topology=None,
) -> PcollResult:
    """Time partitioned allreduce rounds (None = part_persist edges)."""
    config = config if config is not None else NIAGARA
    n_partitions = n_threads if n_partitions is None else n_partitions
    if n_partitions % n_threads:
        raise ValueError(
            f"{n_partitions} partitions not divisible by "
            f"{n_threads} threads")
    per_thread = n_partitions // n_threads
    cluster = Cluster(n_nodes=world, config=config, topology=topology)
    procs = cluster.ranks(world)
    barrier = SimBarrier(cluster.env, parties=world)
    total_rounds = warmup + iterations
    round_start = [0.0] * total_rounds
    finish = np.zeros((total_rounds, world))
    phase = ComputePhase(compute=compute,
                         noise=SingleThreadDelay(noise_fraction))

    def rank_program(proc):
        buf = PartitionedBuffer(n_partitions, partition_size, backed=False)
        coll = proc.pallreduce_init(buf, world, module_for=module)
        team = WorkerTeam(proc.env, n_threads,
                          cluster.rngs.stream(f"noise.rank{proc.rank}"),
                          cores=config.host.cores_per_node)

        def body(tid):
            for p in range(tid * per_thread, (tid + 1) * per_thread):
                yield from proc.pcoll_pready(coll, p)

        for it in range(total_rounds):
            yield barrier.wait()
            if proc.rank == 0:
                round_start[it] = proc.env.now
            yield from proc.pcoll_start(coll)
            yield team.run_round(phase, lambda tid: body(tid))
            yield from proc.pcoll_wait(coll)
            finish[it, proc.rank] = proc.env.now

    for proc in procs:
        cluster.spawn(rank_program(proc))
    cluster.run()
    result = PcollResult(
        world=world, n_threads=n_threads, n_partitions=n_partitions,
        partition_size=partition_size, compute=compute)
    for it in range(warmup, total_rounds):
        result.times.append(float(finish[it].max() - round_start[it]))
    return result
