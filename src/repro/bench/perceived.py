"""The perceived-bandwidth benchmark — Section V-C / Figs. 9, 13.

Measures tolerance to thread imbalance: sender threads compute (100 ms
in the paper) with single-thread-delay noise, and the metric is

    perceived bandwidth = total bytes / latency of the last partition,

where the last partition's latency runs from the laggard's
``MPI_Pready`` to receiver completion.  A perfect early-bird
implementation perceives only one partition's worth of latency, so the
perceived bandwidth can exceed the single-threaded hardware line —
the dotted line in Fig. 9, available here as
:func:`single_thread_line`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.bench.overhead import _spec_factory
from repro.bench.pair import PairBenchResult, run_partitioned_pair
from repro.config import ClusterConfig, NIAGARA
from repro.core.aggregators import Aggregator
from repro.mpi.modules import ModuleSpec
from repro.runtime import SingleThreadDelay


@dataclass
class PerceivedResult:
    """One perceived-bandwidth measurement."""

    n_user: int
    total_bytes: int
    compute: float
    noise_fraction: float
    perceived_bandwidth: float
    result: PairBenchResult


def single_thread_line(config: Optional[ClusterConfig] = None) -> float:
    """The hardware bandwidth available to single-threaded pt2pt (dotted
    line in Fig. 9), bytes/second."""
    config = config if config is not None else NIAGARA
    return config.nic.line_rate


def run_perceived_bandwidth(
    module: Union[Aggregator, ModuleSpec, Callable[[], ModuleSpec], None],
    n_user: int,
    total_bytes: int,
    compute: float = 100e-3,
    noise_fraction: float = 0.04,
    iterations: int = 10,
    warmup: int = 3,
    config: Optional[ClusterConfig] = None,
    fixed_victim: Optional[int] = None,
    fault_schedule=None,
) -> PerceivedResult:
    """One perceived-bandwidth point (None module = part_persist).

    Defaults follow the paper: 100 ms compute, 4 % noise, single-thread
    delay.  ``fixed_victim`` pins the laggard (used when profiling
    arrival patterns for Figs. 10-12); ``fault_schedule`` arms
    deterministic fault injection for the run.
    """
    config = config if config is not None else NIAGARA
    partition_size = total_bytes // n_user
    if partition_size * n_user != total_bytes:
        raise ValueError(
            f"total {total_bytes}B not divisible by {n_user} partitions")
    result = run_partitioned_pair(
        _spec_factory(module),
        n_user=n_user,
        partition_size=partition_size,
        compute=compute,
        noise=SingleThreadDelay(noise_fraction, fixed_victim=fixed_victim),
        iterations=iterations,
        warmup=warmup,
        config=config,
        fault_schedule=fault_schedule,
    )
    return PerceivedResult(
        n_user=n_user,
        total_bytes=total_bytes,
        compute=compute,
        noise_fraction=noise_fraction,
        perceived_bandwidth=result.mean_perceived_bandwidth,
        result=result,
    )
