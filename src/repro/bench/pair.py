"""The two-process partitioned micro-benchmark harness.

Both the overhead benchmark (Section V-B) and the perceived-bandwidth
benchmark (Section V-C) are instances of the same loop, modelled on the
public micro-benchmarks of [14] the paper modified:

* one user partition per thread;
* per iteration: barrier, ``MPI_Start`` both sides, sender threads
  compute (plus injected noise) and ``MPI_Pready`` their partition,
  both sides ``MPI_Wait``;
* 10 warm-up / 100 measured iterations for point-to-point runs (the
  defaults here are smaller; benchmarks pass the paper's counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.config import ClusterConfig, NIAGARA
from repro.mem.buffer import PartitionedBuffer
from repro.mpi.cluster import Cluster
from repro.mpi.modules import ModuleSpec
from repro.runtime import ComputePhase, NoNoise, NoiseModel, WorkerTeam
from repro.sim.sync import SimBarrier


@dataclass
class IterationRecord:
    """Timings of one measured iteration."""

    #: Barrier-release time (both sides synchronized).
    t0: float = 0.0
    t_send_done: float = 0.0
    t_recv_done: float = 0.0
    #: Per-partition ``MPI_Pready`` times.
    pready_times: list = field(default_factory=list)
    #: Per-partition arrival times at the receiver.
    arrival_times: list = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        """Iteration wall time (slower side)."""
        return max(self.t_send_done, self.t_recv_done) - self.t0

    @property
    def laggard_pready(self) -> float:
        return max(self.pready_times)

    @property
    def last_partition_latency(self) -> float:
        """Receiver completion relative to the last ``Pready``."""
        return self.t_recv_done - self.laggard_pready


@dataclass
class PairBenchResult:
    """All measured iterations of one configuration."""

    n_user: int
    partition_size: int
    total_bytes: int
    compute: float
    iterations: list[IterationRecord] = field(default_factory=list)
    #: WRs the module posted across the whole run (native module only).
    wrs_posted: Optional[int] = None
    timer_flushes: Optional[int] = None
    #: Fabric counters at end of run (fault/retry/reconnect stats).
    counters: dict = field(default_factory=dict)

    @property
    def mean_time(self) -> float:
        return float(np.mean([it.elapsed for it in self.iterations]))

    @property
    def mean_comm_time(self) -> float:
        """Mean iteration time with the compute phase subtracted."""
        return float(np.mean(
            [it.elapsed - self.compute for it in self.iterations]))

    @property
    def mean_perceived_bandwidth(self) -> float:
        """total bytes / latency-of-last-partition, averaged (Section V-C)."""
        return float(np.mean(
            [self.total_bytes / it.last_partition_latency
             for it in self.iterations]))

    def arrival_rounds(self) -> list[list[float]]:
        """Per-iteration ``Pready`` times (input to min-δ estimation)."""
        return [list(it.pready_times) for it in self.iterations]


def run_partitioned_pair(
    spec_factory: Callable[[], ModuleSpec],
    n_user: int,
    partition_size: int,
    compute: float = 0.0,
    noise: Optional[NoiseModel] = None,
    iterations: int = 10,
    warmup: int = 3,
    config: Optional[ClusterConfig] = None,
    backed: bool = False,
    seed: Optional[int] = None,
    fault_schedule=None,
) -> PairBenchResult:
    """Run one (module, workload) configuration end to end.

    ``spec_factory`` is called once per side so each gets its own spec
    object.  With ``backed=True`` real bytes move and are verified.
    ``fault_schedule`` (a :class:`repro.faults.FaultSchedule`) arms
    deterministic fault injection on the pair's fabric.
    """
    config = config if config is not None else NIAGARA
    if seed is not None:
        config = config.with_changes(seed=seed)
    cluster = Cluster(n_nodes=2, config=config)
    if fault_schedule is not None:
        cluster.fabric.install_faults(fault_schedule)
    sender_proc, receiver_proc = cluster.ranks(2)
    cores = config.host.cores_per_node
    if n_user > cores:
        sender_proc.sw_multiplier = config.host.oversubscription_penalty
    sbuf = PartitionedBuffer(n_user, partition_size, backed=backed)
    rbuf = PartitionedBuffer(n_user, partition_size, backed=backed)
    if backed:
        sbuf.fill_pattern(seed=config.seed)
    noise = noise if noise is not None else NoNoise()
    phase = ComputePhase(compute=compute, noise=noise)
    barrier = SimBarrier(cluster.env, parties=2)
    total_rounds = warmup + iterations
    result = PairBenchResult(
        n_user=n_user,
        partition_size=partition_size,
        total_bytes=n_user * partition_size,
        compute=compute,
    )
    records = [IterationRecord() for _ in range(total_rounds)]

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=spec_factory())
        team = WorkerTeam(proc.env, n_user,
                          cluster.rngs.stream("noise.sender"), cores=cores)
        for it in range(total_rounds):
            yield barrier.wait()
            records[it].t0 = proc.env.now
            yield from proc.start(req)
            yield team.run_round(
                phase, lambda tid: proc.pready(req, tid))
            yield from proc.wait_partitioned(req)
            records[it].t_send_done = proc.env.now
            records[it].pready_times = list(req.pready_times)
        if hasattr(req.module, "total_wrs_posted"):
            result.wrs_posted = req.module.total_wrs_posted
            result.timer_flushes = req.module.timer_flushes

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=spec_factory())
        for it in range(total_rounds):
            yield barrier.wait()
            yield from proc.start(req)
            yield from proc.wait_partitioned(req)
            records[it].t_recv_done = proc.env.now
            records[it].arrival_times = list(req.arrival_times)

    cluster.spawn(sender(sender_proc))
    cluster.spawn(receiver(receiver_proc))
    cluster.run()
    if backed and not np.array_equal(rbuf.data, sbuf.data):
        raise AssertionError("receive buffer does not match send buffer")
    result.iterations = records[warmup:]
    result.counters = cluster.fabric.counters.as_dict()
    return result
