"""The overhead (wire-efficiency) benchmark — Section V-B / Figs. 6-8.

No compute, no noise: all threads mark their partition immediately, so
the measurement isolates per-message software and hardware overheads.
Results are reported as speedup relative to the ``part_persist``
baseline at the same workload, exactly as the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.bench.pair import PairBenchResult, run_partitioned_pair
from repro.config import ClusterConfig, NIAGARA
from repro.core.aggregators import Aggregator
from repro.core.module import NativeSpec
from repro.mpi.modules import ModuleSpec
from repro.mpi.persist_module import PersistSpec


@dataclass
class OverheadResult:
    """One overhead-benchmark measurement."""

    n_user: int
    total_bytes: int
    mean_time: float
    result: PairBenchResult

    @property
    def partition_size(self) -> int:
        return self.total_bytes // self.n_user


def _spec_factory(module: Union[Aggregator, ModuleSpec, Callable[[], ModuleSpec], None]):
    """Accept an aggregator, a spec, a factory, or None (baseline)."""
    if module is None:
        return PersistSpec
    if isinstance(module, Aggregator):
        return lambda: NativeSpec(module)
    if isinstance(module, ModuleSpec):
        return lambda: module
    return module


def run_overhead(
    module: Union[Aggregator, ModuleSpec, Callable[[], ModuleSpec], None],
    n_user: int,
    total_bytes: int,
    iterations: int = 100,
    warmup: int = 10,
    config: Optional[ClusterConfig] = None,
    backed: bool = False,
) -> OverheadResult:
    """One overhead point: ``module`` (None = part_persist baseline)."""
    config = config if config is not None else NIAGARA
    partition_size = total_bytes // n_user
    if partition_size * n_user != total_bytes:
        raise ValueError(
            f"total {total_bytes}B not divisible by {n_user} partitions")
    if partition_size < 1:
        raise ValueError("partition size below one byte")
    result = run_partitioned_pair(
        _spec_factory(module),
        n_user=n_user,
        partition_size=partition_size,
        compute=0.0,
        iterations=iterations,
        warmup=warmup,
        config=config,
        backed=backed,
    )
    return OverheadResult(
        n_user=n_user,
        total_bytes=total_bytes,
        mean_time=result.mean_time,
        result=result,
    )


def overhead_speedup_series(
    module: Union[Aggregator, ModuleSpec, Callable[[], ModuleSpec]],
    n_user: int,
    sizes: Sequence[int],
    iterations: int = 100,
    warmup: int = 10,
    config: Optional[ClusterConfig] = None,
    baseline_cache: Optional[dict] = None,
) -> dict[int, float]:
    """Speedup over ``part_persist`` across message sizes (a Fig. 6-8 line).

    ``baseline_cache`` (size -> mean time) lets several series share one
    baseline sweep, as the figures do.
    """
    speedups: dict[int, float] = {}
    cache = baseline_cache if baseline_cache is not None else {}
    for size in sizes:
        if size not in cache:
            cache[size] = run_overhead(
                None, n_user=n_user, total_bytes=size,
                iterations=iterations, warmup=warmup, config=config,
            ).mean_time
        ours = run_overhead(
            module, n_user=n_user, total_bytes=size,
            iterations=iterations, warmup=warmup, config=config,
        ).mean_time
        speedups[size] = cache[size] / ours
    return speedups
