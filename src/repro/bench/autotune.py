"""The autotune convergence benchmark (repro.autotune end to end).

Runs one persistent partitioned exchange for many iterations with an
:class:`~repro.autotune.AdaptiveAggregator` driving the plan, and
reports the convergence trajectory: per-round plans and completion
times, the final converged plan, and the mean time over the trailing
converged window — the numbers ``ext_autotune`` compares against the
offline tuning-table optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.bench.pair import PairBenchResult, run_partitioned_pair
from repro.config import ClusterConfig, NIAGARA
from repro.core.module import NativeSpec
from repro.runtime import SingleThreadDelay

from repro.autotune import AdaptiveAggregator, TuningStore, build_autotuner


@dataclass
class AutotuneRunResult:
    """One autotuned run's convergence trajectory."""

    n_user: int
    total_bytes: int
    result: PairBenchResult
    #: Per-round plan/outcome dicts from the controller history.
    round_plans: list[dict] = field(default_factory=list)
    best_plan: Optional[dict] = None
    #: Observed mean completion time of rounds that ran the best plan.
    best_plan_time: Optional[float] = None
    #: First measured round of the trailing run of identical choices.
    converged_round: Optional[int] = None
    #: Whether more than one distinct plan was ever applied.
    explored: bool = False

    @property
    def mean_time(self) -> float:
        return self.result.mean_time

    @property
    def mean_comm_time(self) -> float:
        return self.result.mean_comm_time

    @property
    def mean_perceived_bandwidth(self) -> float:
        return self.result.mean_perceived_bandwidth

    @property
    def final_time(self) -> float:
        """Mean completion time over the trailing converged window.

        Falls back to the overall mean when the controller never
        settled (still exploring at the last round).
        """
        if self.converged_round is None:
            return self.mean_time
        tail = [r["completion_time"] for r in self.round_plans
                if r["round"] >= self.converged_round
                and r["completion_time"] is not None]
        if not tail:
            return self.mean_time
        return float(np.mean(tail))


def run_autotuned_pair(
    autotune_params: Optional[dict] = None,
    n_user: int = 32,
    total_bytes: int = 2 << 20,
    compute: float = 0.0,
    noise_fraction: float = 0.0,
    iterations: int = 64,
    warmup: int = 2,
    config: Optional[ClusterConfig] = None,
    store: Optional[TuningStore] = None,
    aggregator: Optional[AdaptiveAggregator] = None,
) -> AutotuneRunResult:
    """Run one autotuned configuration end to end.

    ``autotune_params`` feeds :func:`repro.autotune.build_autotuner`
    (ignored when an ``aggregator`` is passed directly).  Warmup rounds
    are part of the learning trajectory — the controller sees every
    round — but only measured rounds enter the aggregate statistics,
    matching the pair harness convention.
    """
    config = config if config is not None else NIAGARA
    partition_size = total_bytes // n_user
    if partition_size * n_user != total_bytes:
        raise ValueError(
            f"total {total_bytes}B not divisible by {n_user} partitions")
    agg = aggregator if aggregator is not None else build_autotuner(
        autotune_params, store=store)
    noise = SingleThreadDelay(noise_fraction) if noise_fraction > 0 else None
    result = run_partitioned_pair(
        lambda: NativeSpec(agg),
        n_user=n_user,
        partition_size=partition_size,
        compute=compute,
        noise=noise,
        iterations=iterations,
        warmup=warmup,
        config=config,
    )
    controller = agg.controller
    out = AutotuneRunResult(
        n_user=n_user, total_bytes=total_bytes, result=result)
    if controller is not None:
        out.round_plans = controller.round_plans()
        out.best_plan = controller.best_choice.as_dict()
        out.best_plan_time = controller.mean_time_of(controller.best_choice)
        out.explored = controller.explored
        converged = controller.converged_round
        # The trajectory includes warmup rounds; completion times for
        # them are real observations, so the converged round stands as
        # reported by the controller.
        out.converged_round = converged
    return out
