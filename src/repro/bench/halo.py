"""2-D halo-exchange pattern benchmark.

The paper's benchmark suite [14] ships a halo exchange next to Sweep3D;
this harness provides it for the same designs.  Unlike the wavefront,
every rank exchanges with all four neighbours *concurrently* each
timestep: start receives, compute (threads pready both outgoing faces'
partitions), wait everything, repeat.  The metric mirrors the sweep:
communication time = iteration wall time minus one compute phase (all
ranks compute in parallel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.bench.overhead import _spec_factory
from repro.config import ClusterConfig, NIAGARA
from repro.core.aggregators import Aggregator
from repro.mem.buffer import PartitionedBuffer
from repro.mpi.cluster import Cluster
from repro.mpi.modules import ModuleSpec
from repro.runtime import ComputePhase, SingleThreadDelay, WorkerTeam
from repro.sim.sync import SimBarrier

_DIRECTIONS = ("up", "down", "left", "right")
_OPPOSITE = {"up": "down", "down": "up", "left": "right", "right": "left"}


@dataclass
class HaloResult:
    """Halo benchmark outcome."""

    grid: tuple[int, int]
    n_threads: int
    face_bytes: int
    compute: float
    noise_fraction: float
    times: list[float] = field(default_factory=list)

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times))

    @property
    def mean_comm_time(self) -> float:
        """Iteration time minus the (parallel) compute phase."""
        return float(np.mean([t - self.compute for t in self.times]))


def run_halo(
    module: Union[Aggregator, ModuleSpec, Callable[[], ModuleSpec], None],
    grid: tuple[int, int] = (4, 4),
    n_threads: int = 16,
    face_bytes: int = 1 << 20,
    compute: float = 1e-3,
    noise_fraction: float = 0.01,
    iterations: int = 10,
    warmup: int = 3,
    config: Optional[ClusterConfig] = None,
    topology=None,
) -> HaloResult:
    """Run the halo pattern (None module = part_persist baseline)."""
    config = config if config is not None else NIAGARA
    px, py = grid
    if px < 1 or py < 1:
        raise ValueError(f"bad grid {grid}")
    partition_size = face_bytes // n_threads
    if partition_size * n_threads != face_bytes:
        raise ValueError(
            f"face of {face_bytes}B not divisible by {n_threads} threads")
    spec_factory = _spec_factory(module)
    n_ranks = px * py
    cluster = Cluster(n_nodes=n_ranks, config=config, topology=topology)
    procs = cluster.ranks(n_ranks)
    cores = config.host.cores_per_node
    barrier = SimBarrier(cluster.env, parties=n_ranks)
    total_rounds = warmup + iterations
    round_start = [0.0] * total_rounds
    finish = np.zeros((total_rounds, n_ranks))
    phase = ComputePhase(compute=compute,
                         noise=SingleThreadDelay(noise_fraction))

    def rank_id(i: int, j: int) -> int:
        return i * py + j

    def neighbours(i: int, j: int) -> dict[str, int]:
        out = {}
        if i > 0:
            out["up"] = rank_id(i - 1, j)
        if i < px - 1:
            out["down"] = rank_id(i + 1, j)
        if j > 0:
            out["left"] = rank_id(i, j - 1)
        if j < py - 1:
            out["right"] = rank_id(i, j + 1)
        return out

    def rank_program(proc, i: int, j: int):
        rid = rank_id(i, j)
        sends, recvs = {}, {}
        for direction, peer in neighbours(i, j).items():
            tag = _DIRECTIONS.index(direction)
            send_face = PartitionedBuffer(n_threads, partition_size,
                                          backed=False)
            recv_face = PartitionedBuffer(n_threads, partition_size,
                                          backed=False)
            sends[direction] = proc.psend_init(
                send_face, dest=peer, tag=tag, module=spec_factory())
            recvs[direction] = proc.precv_init(
                recv_face, source=peer,
                tag=_DIRECTIONS.index(_OPPOSITE[direction]),
                module=spec_factory())
        team = WorkerTeam(proc.env, n_threads,
                          cluster.rngs.stream(f"noise.rank{rid}"),
                          cores=cores)
        send_reqs = list(sends.values())

        def body(tid):
            for req in send_reqs:
                yield from proc.pready(req, tid)

        for it in range(total_rounds):
            yield barrier.wait()
            if rid == 0:
                round_start[it] = proc.env.now
            for req in list(recvs.values()) + send_reqs:
                yield from proc.start(req)
            yield team.run_round(phase, lambda tid: body(tid))
            for req in send_reqs:
                yield from proc.wait_partitioned(req)
            for req in recvs.values():
                yield from proc.wait_partitioned(req)
            finish[it, rid] = proc.env.now

    for i in range(px):
        for j in range(py):
            cluster.spawn(rank_program(procs[rank_id(i, j)], i, j))
    cluster.run()
    result = HaloResult(
        grid=grid,
        n_threads=n_threads,
        face_bytes=face_bytes,
        compute=compute,
        noise_fraction=noise_fraction,
    )
    for it in range(warmup, total_rounds):
        result.times.append(float(finish[it].max() - round_start[it]))
    return result
