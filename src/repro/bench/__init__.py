"""Benchmark implementations mirroring the paper's evaluation.

* :mod:`repro.bench.pair` — the two-process harness all point-to-point
  micro-benchmarks share;
* :mod:`repro.bench.overhead` — the overhead (wire-efficiency)
  benchmark of Section V-B;
* :mod:`repro.bench.perceived` — the perceived-bandwidth benchmark of
  Section V-C;
* :mod:`repro.bench.sweep` — the Sweep3D communication pattern of
  Section V-D;
* :mod:`repro.bench.coll` — partitioned tree-collective rounds
  (allreduce over binomial trees of partitioned pairs);
* :mod:`repro.bench.reporting` — table/series formatting for the
  figure-regeneration scripts in ``benchmarks/``.
"""

from repro.bench.pair import PairBenchResult, IterationRecord, run_partitioned_pair
from repro.bench.overhead import OverheadResult, run_overhead, overhead_speedup_series
from repro.bench.perceived import PerceivedResult, run_perceived_bandwidth
from repro.bench.sweep import SweepResult, run_sweep
from repro.bench.halo import HaloResult, run_halo
from repro.bench.coll import PcollResult, run_pallreduce
from repro.bench.reporting import format_table, format_speedup_series

__all__ = [
    "PairBenchResult",
    "IterationRecord",
    "run_partitioned_pair",
    "OverheadResult",
    "run_overhead",
    "overhead_speedup_series",
    "PerceivedResult",
    "run_perceived_bandwidth",
    "SweepResult",
    "run_sweep",
    "HaloResult",
    "run_halo",
    "PcollResult",
    "run_pallreduce",
    "format_table",
    "format_speedup_series",
]
