"""The Sweep3D communication pattern — Section V-D / Fig. 14.

A 2-D process grid swept from the top-left corner: each rank waits for
partitioned receives from its up/left neighbours, computes with its
thread team (noise injected), then partition-sends to its down/right
neighbours.  The paper runs this on 1024 cores (16 threads x 64 nodes);
the default grid here matches (8 x 8 ranks, one per node, 16 threads).

Reported metric: *communication time* — iteration wall time minus the
wavefront's critical-path compute — and its speedup over the
``part_persist`` baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.bench.overhead import _spec_factory
from repro.config import ClusterConfig, NIAGARA
from repro.core.aggregators import Aggregator
from repro.mem.buffer import PartitionedBuffer
from repro.mpi.cluster import Cluster
from repro.mpi.modules import ModuleSpec
from repro.runtime import ComputePhase, SingleThreadDelay, WorkerTeam
from repro.sim.sync import SimBarrier

_TAG_RIGHT = 0
_TAG_DOWN = 1


@dataclass
class SweepResult:
    """Sweep benchmark outcome."""

    grid: tuple[int, int]
    n_threads: int
    total_bytes: int
    compute: float
    noise_fraction: float
    #: Wall time of each measured iteration.
    times: list[float] = field(default_factory=list)

    @property
    def critical_path_compute(self) -> float:
        px, py = self.grid
        return (px + py - 1) * self.compute

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.times))

    @property
    def mean_comm_time(self) -> float:
        """Iteration time minus critical-path compute (Fig. 14's metric)."""
        return float(np.mean(
            [t - self.critical_path_compute for t in self.times]))


def run_sweep(
    module: Union[Aggregator, ModuleSpec, Callable[[], ModuleSpec], None],
    grid: tuple[int, int] = (8, 8),
    n_threads: int = 16,
    total_bytes: int = 1 << 20,
    compute: float = 1e-3,
    noise_fraction: float = 0.01,
    iterations: int = 10,
    warmup: int = 3,
    config: Optional[ClusterConfig] = None,
) -> SweepResult:
    """Run the sweep pattern (None module = part_persist baseline)."""
    config = config if config is not None else NIAGARA
    px, py = grid
    if px < 1 or py < 1:
        raise ValueError(f"bad grid {grid}")
    partition_size = total_bytes // n_threads
    if partition_size * n_threads != total_bytes:
        raise ValueError(
            f"total {total_bytes}B not divisible by {n_threads} threads")
    spec_factory = _spec_factory(module)
    n_ranks = px * py
    cluster = Cluster(n_nodes=n_ranks, config=config)
    procs = cluster.ranks(n_ranks)
    cores = config.host.cores_per_node
    barrier = SimBarrier(cluster.env, parties=n_ranks)
    total_rounds = warmup + iterations
    # Per-round: barrier release time and each rank's finish time.
    round_start = [0.0] * total_rounds
    finish = np.zeros((total_rounds, n_ranks))
    phase = ComputePhase(compute=compute, noise=SingleThreadDelay(noise_fraction))

    def rank_id(i: int, j: int) -> int:
        return i * py + j

    def rank_program(proc, i: int, j: int):
        rid = rank_id(i, j)
        sends = {}
        recvs = {}
        bufs = []
        if j + 1 < py:
            buf = PartitionedBuffer(n_threads, partition_size, backed=False)
            bufs.append(buf)
            sends["right"] = proc.psend_init(
                buf, dest=rank_id(i, j + 1), tag=_TAG_RIGHT,
                module=spec_factory())
        if i + 1 < px:
            buf = PartitionedBuffer(n_threads, partition_size, backed=False)
            bufs.append(buf)
            sends["down"] = proc.psend_init(
                buf, dest=rank_id(i + 1, j), tag=_TAG_DOWN,
                module=spec_factory())
        if j - 1 >= 0:
            buf = PartitionedBuffer(n_threads, partition_size, backed=False)
            bufs.append(buf)
            recvs["left"] = proc.precv_init(
                buf, source=rank_id(i, j - 1), tag=_TAG_RIGHT,
                module=spec_factory())
        if i - 1 >= 0:
            buf = PartitionedBuffer(n_threads, partition_size, backed=False)
            bufs.append(buf)
            recvs["up"] = proc.precv_init(
                buf, source=rank_id(i - 1, j), tag=_TAG_DOWN,
                module=spec_factory())
        team = WorkerTeam(proc.env, n_threads,
                          cluster.rngs.stream(f"noise.rank{rid}"), cores=cores)
        send_reqs = list(sends.values())

        def body(tid):
            for req in send_reqs:
                yield from proc.pready(req, tid)

        for it in range(total_rounds):
            yield barrier.wait()
            if rid == 0:
                round_start[it] = proc.env.now
            for req in list(recvs.values()) + send_reqs:
                yield from proc.start(req)
            # Wavefront dependency: wait for inbound halves.
            for req in recvs.values():
                yield from proc.wait_partitioned(req)
            yield team.run_round(phase, lambda tid: body(tid))
            for req in send_reqs:
                yield from proc.wait_partitioned(req)
            finish[it, rid] = proc.env.now

    for i in range(px):
        for j in range(py):
            cluster.spawn(rank_program(procs[rank_id(i, j)], i, j))
    cluster.run()
    result = SweepResult(
        grid=grid,
        n_threads=n_threads,
        total_bytes=total_bytes,
        compute=compute,
        noise_fraction=noise_fraction,
    )
    for it in range(warmup, total_rounds):
        result.times.append(float(finish[it].max() - round_start[it]))
    return result
