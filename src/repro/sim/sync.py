"""Synchronization primitives with modelled costs.

The paper's runtime serializes threads at two points that matter to its
results:

* the **atomic add-and-fetch** in ``MPI_Pready`` — at high partition
  counts threads "take turns to increment the atomic counter", which the
  paper identifies as a source of arrival skew (Section V-C3, Fig. 12);
* the **progress-engine lock** — a single thread progresses MPI at a
  time (Section IV-A).

:class:`AtomicCounter` and :class:`SimLock` model both, each charging a
configurable per-access virtual-time cost while held, so contention
produces the same skew in simulation as on real hardware.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import SimulationError
from repro.sim.core import Environment, Event, _PENDING


class SimLock:
    """A mutex for simulated processes.

    ``acquire`` returns an event that fires when the lock is granted;
    ``try_acquire`` is the non-blocking variant used by the paper's
    ``MPI_Parrived`` path ("tries to acquire a lock; ... otherwise it
    just returns").
    """

    __slots__ = ("env", "_locked", "_waiting", "contended_count")

    def __init__(self, env: Environment):
        self.env = env
        self._locked = False
        self._waiting: Deque[Event] = deque()
        #: Number of times the lock was found busy (contention statistic).
        self.contended_count = 0

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def acquire(self) -> Event:
        """Blockingly claim the lock; fires when held."""
        ev = Event(self.env)
        if not self._locked:
            self._locked = True
            ev.succeed(None)
        else:
            self.contended_count += 1
            self._waiting.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Claim the lock iff free; returns whether it was claimed."""
        if self._locked:
            self.contended_count += 1
            return False
        self._locked = True
        return True

    def release(self) -> None:
        """Release; hands the lock to the oldest waiter if any."""
        if not self._locked:
            raise SimulationError("release() of an unlocked SimLock")
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.succeed(None)  # lock stays held, ownership transfers
        else:
            self._locked = False


class SimSemaphore:
    """A counting semaphore for simulated processes."""

    __slots__ = ("env", "_value", "_waiting")

    def __init__(self, env: Environment, value: int = 1):
        if value < 0:
            raise ValueError(f"semaphore value must be >= 0, got {value}")
        self.env = env
        self._value = value
        self._waiting: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        ev = Event(self.env)
        if self._value > 0:
            self._value -= 1
            ev.succeed(None)
        else:
            self._waiting.append(ev)
        return ev

    def release(self) -> None:
        if self._waiting:
            self._waiting.popleft().succeed(None)
        else:
            self._value += 1


class AtomicCounter:
    """A contended atomic integer with a per-access time cost.

    ``add_and_fetch`` models an atomic RMW: accesses serialize on an
    internal lock and each holds it for ``access_cost`` virtual seconds
    (cache-line ping-pong on real hardware).  The method is a *process
    body*: call it as ``value = yield from counter.add_and_fetch(env, 1)``.

    With ``access_cost == 0`` accesses are instantaneous but still
    atomic (trivially so, under DES single-stepping).
    """

    __slots__ = ("env", "_value", "access_cost", "_lock", "access_count")

    def __init__(self, env: Environment, initial: int = 0, access_cost: float = 0.0):
        if access_cost < 0:
            raise ValueError(f"negative access_cost: {access_cost}")
        self.env = env
        self._value = initial
        self.access_cost = access_cost
        self._lock = SimLock(env)
        #: total accesses, for contention statistics
        self.access_count = 0

    @property
    def value(self) -> int:
        """Current value (racy peek, as on real hardware)."""
        return self._value

    def add_and_fetch(self, delta: int = 1):
        """Atomically add ``delta``; yields, returns the new value."""
        yield self._lock.acquire()
        try:
            if self.access_cost > 0:
                yield self.access_cost
            self._value += delta
            self.access_count += 1
            return self._value
        finally:
            self._lock.release()

    def fetch(self):
        """Atomic read with the same serialization cost as a write."""
        yield self._lock.acquire()
        try:
            if self.access_cost > 0:
                yield self.access_cost
            self.access_count += 1
            return self._value
        finally:
            self._lock.release()


class _Race(Event):
    """First-of-two race event: a lean stand-in for :class:`AnyOf`.

    :meth:`Notify.wait` is the engine's hottest composite-event site and
    never reads the condition's value dict, so the full ``Condition``
    machinery (constituent list, fired-value dict, evaluate callable) is
    dead weight there.  ``_win`` mirrors ``Condition._check`` exactly —
    first constituent to process triggers the race at the current time
    with normal priority, later ones no-op — so the scheduled event
    sequence is identical to the ``AnyOf`` it replaces.
    """

    __slots__ = ()

    def _win(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)


class Notify:
    """An edge-triggered wakeup latch (the progress engine's *kick*).

    ``set`` arms the latch and wakes anything parked on the current
    :meth:`wait` event; repeated sets before a consume coalesce into
    one wakeup, matching completion-channel semantics.  A consumer that
    finds the latch ``pending`` calls :meth:`consume` to re-arm it and
    re-checks its condition — this check-consume-recheck discipline is
    what makes a set landing *between* a predicate check and the park
    impossible to lose.
    """

    __slots__ = ("env", "_event", "set_count")

    def __init__(self, env: Environment):
        self.env = env
        self._event = Event(env)
        #: Total sets that armed the latch (coalesced sets not counted).
        self.set_count = 0

    @property
    def pending(self) -> bool:
        """Whether a set has landed since the last :meth:`consume`."""
        return self._event.triggered

    def set(self) -> None:
        """Arm the latch, waking the current wait event (idempotent)."""
        if not self._event.triggered:
            self._event.succeed(None)
            self.set_count += 1

    def consume(self) -> None:
        """Re-arm after observing a pending set (edge-triggered reset)."""
        self._event = Event(self.env)

    def wait(self, fallback: Optional[float] = None) -> Event:
        """Event firing on the next set (or after ``fallback`` seconds).

        The returned event references the *current* latch generation:
        a set that landed before this call fires it immediately, so a
        parker can never sleep through a wakeup it has not consumed.
        """
        if fallback is None:
            return self._event
        latch = self._event
        timer = self.env.timeout(fallback)
        race = _Race(self.env)
        if latch.callbacks is None:
            # Latch generation already processed: win immediately.
            race._win(latch)
        else:
            latch.callbacks.append(race._win)
        timer.callbacks.append(race._win)
        return race


class SimBarrier:
    """A reusable barrier for ``parties`` simulated processes."""

    __slots__ = ("env", "parties", "_count", "_generation_event")

    def __init__(self, env: Environment, parties: int):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.env = env
        self.parties = parties
        self._count = 0
        self._generation_event = Event(env)

    def wait(self) -> Event:
        """Returns an event that fires when all parties have arrived."""
        self._count += 1
        current = self._generation_event
        if self._count == self.parties:
            self._count = 0
            self._generation_event = Event(self.env)
            current.succeed(None)
        return current
