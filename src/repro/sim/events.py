"""Composite events: wait for all / any of a set of events."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.sim.core import Environment, Event


class Condition(Event):
    """Fires when ``evaluate(events, fired_count)`` becomes true.

    The value of a condition is a dict mapping each *fired* constituent
    event to its value, in firing order.  If any constituent fails, the
    condition fails with that exception.
    """

    __slots__ = ("_evaluate", "_events", "_fired")

    def __init__(
        self,
        env: Environment,
        evaluate: Callable[[Sequence[Event], int], bool],
        events: Sequence[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._fired: dict[Event, object] = {}
        for ev in self._events:
            if ev.env is not env:
                raise ValueError("all events must share one environment")
        if not self._events and evaluate(self._events, 0):
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                # Already processed — account for it immediately.
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._fired[event] = event._value
        if self._evaluate(self._events, len(self._fired)):
            self.succeed(dict(self._fired))


def _all_fired(evs: Sequence[Event], n: int) -> bool:
    return n == len(evs)


def _any_fired(evs: Sequence[Event], n: int) -> bool:
    return n >= 1


class AllOf(Condition):
    """Fires when every constituent event has fired successfully."""

    __slots__ = ()

    def __init__(self, env: Environment, events: Sequence[Event]):
        super().__init__(env, _all_fired, events)


class AnyOf(Condition):
    """Fires when at least one constituent event has fired successfully."""

    __slots__ = ()

    def __init__(self, env: Environment, events: Sequence[Event]):
        if not events:
            raise ValueError("AnyOf needs at least one event")
        super().__init__(env, _any_fired, events)
