"""Environment and basic event types for the DES kernel.

Scheduling preserves the exact ``(time, priority, seq)`` FIFO contract
the simulator has always had — same-time, same-priority events fire in
insertion order, which makes repeated runs bit-identical — but the
implementation is a *bucketed calendar* tuned for the workload's
actual shape rather than a single binary heap:

* events scheduled **at the current time** (``delay == 0`` — roughly
  half of all events: ``succeed()``/``fail()`` calls, process
  bootstraps and completions) go straight into the current dispatch
  batch, a pair of deques (urgent/normal) drained FIFO.  They never
  touch the heap at all;
* **future** events fall back to a binary heap of
  ``(time, priority, seq, event)`` entries, exactly the historical
  structure;
* priorities other than ``PRIORITY_URGENT``/``PRIORITY_NORMAL`` are
  legal but rare, and ride a small per-batch overflow heap.

When virtual time advances, a timestamp holding a single heap entry —
the overwhelmingly common case — dispatches straight out of the heap;
a colliding timestamp drains all its heap entries into the batch
deques in one go.  Either way dispatch happens in the single tight
loop of :meth:`Environment._drain` with no per-event method-call
overhead.  Ordering is identical to the heap-only scheduler by
construction: heap entries at a timestamp always predate (lower
``seq``) anything appended to the batch while it runs, urgent arrivals
preempt queued normal events on every iteration, and the overflow heap
keeps ``(priority, seq)`` order for exotic priorities.
``tests/test_sim/test_scheduler_equiv.py`` holds the scheduler to that
equivalence property under randomized floods.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimTimeError, SimulationError

#: Priority for events that must fire before ordinary ones at the same time
#: (used internally for process initialization and interrupts).
PRIORITY_URGENT: int = 0
#: Default priority for ordinary events.
PRIORITY_NORMAL: int = 1

_PENDING = object()  # sentinel: event value not yet set

_INF = float("inf")


class Event:
    """A happening at a point in simulated time.

    An event moves through three states:

    * *pending* — created, not yet scheduled;
    * *triggered* — given a value (or failure) and placed on the queue;
    * *processed* — callbacks have run.

    Processes wait on events by ``yield``-ing them; arbitrary code can
    attach callbacks via :attr:`callbacks`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: list of callables invoked with this event when it is processed;
        #: ``None`` once processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        self._defused = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run.

        An event that fails with no waiting process would otherwise abort
        :meth:`Environment.run` to avoid silently swallowing errors.
        """
        self._defused = True

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        if priority == 1:
            env._cur_normal.append(self)
        elif priority == 0:
            env._cur_urgent.append(self)
        else:
            env._push_rare(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        env = self.env
        if priority == 1:
            env._cur_normal.append(self)
        elif priority == 0:
            env._cur_urgent.append(self)
        else:
            env._push_rare(self, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        state = (
            "processed" if self._processed
            else "triggered" if self._value is not _PENDING
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Timeouts are triggered at construction; yielding one suspends the
    process for ``delay`` units of virtual time.  Construction is fully
    inlined (no ``super().__init__`` / ``_schedule`` hops): timeouts are
    the single most-allocated event type on the hot path.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimTimeError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self.delay = delay
        when = env._now + delay
        if when > env._now:
            seq = env._seq
            env._seq = seq + 1
            heappush(env._heap, (when, 1, seq, self))
        else:
            env._cur_normal.append(self)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class _Wake(Event):
    """A pooled kernel-internal wakeup event.

    Used only by :class:`~repro.sim.process.Process` for bootstraps and
    already-processed-target resumptions: nothing outside the kernel
    holds a reference once its outcome is read, so instances are
    recycled through :attr:`Environment._wake_pool` instead of being
    allocated per use.
    """

    __slots__ = ()


class Environment:
    """Execution environment: virtual clock plus calendar queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        #: Far-future events: a heap of ``(time, priority, seq, event)``.
        self._heap: list[tuple[float, int, int, Event]] = []
        #: Current-timestamp batch, drained FIFO.  Urgent events preempt
        #: queued normal ones; exotic priorities overflow into
        #: ``_cur_rare`` (a ``(priority, seq, event)`` heap).
        self._cur_urgent: deque[Event] = deque()
        self._cur_normal: deque[Event] = deque()
        self._cur_rare: list[tuple[int, int, Event]] = []
        self._seq = 0
        #: Recycled :class:`_Wake` instances (see ``sim.process``).
        self._wake_pool: list[Event] = []
        #: Optional :class:`~repro.sim.profile.KernelProfile` hook; when
        #: set, the dispatch loop records per-event-type counts/timings.
        self._profile = None
        #: The process currently being resumed, if any.
        self.active_process = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ------------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Start a new simulated process running ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> "Event":
        """Event that fires when every event in ``events`` has fired."""
        from repro.sim.events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> "Event":
        """Event that fires when at least one event in ``events`` has fired."""
        from repro.sim.events import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling ------------------------------------------------------------

    def _push_rare(self, event: Event, priority: int) -> None:
        """Admit a current-time event with an exotic priority (>= 2)."""
        seq = self._seq
        self._seq = seq + 1
        heappush(self._cur_rare, (priority, seq, event))

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimTimeError(f"cannot schedule in the past (delay={delay})")
        when = self._now + delay
        if when > self._now:
            seq = self._seq
            self._seq = seq + 1
            heappush(self._heap, (when, priority, seq, event))
        elif priority == 1:
            self._cur_normal.append(event)
        elif priority == 0:
            self._cur_urgent.append(event)
        else:
            self._push_rare(event, priority)

    def _open_batch(self) -> None:
        """Advance to the next scheduled time and stage its events.

        Drains every heap entry at the new timestamp into the batch
        deques in ``(priority, seq)`` order.  Entries staged here always
        precede (by ``seq``) anything appended while the batch runs.
        """
        heap = self._heap
        when = heap[0][0]
        self._now = when
        urgent, normal = self._cur_urgent, self._cur_normal
        while heap and heap[0][0] == when:
            entry = heappop(heap)
            priority = entry[1]
            if priority == 1:
                normal.append(entry[3])
            elif priority == 0:
                urgent.append(entry[3])
            else:
                heappush(self._cur_rare, (priority, entry[2], entry[3]))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._cur_urgent or self._cur_normal or self._cur_rare:
            return self._now
        return self._heap[0][0] if self._heap else _INF

    def step(self) -> None:
        """Process exactly one event from the queue."""
        if not (self._cur_urgent or self._cur_normal or self._cur_rare):
            if not self._heap:
                raise SimulationError("step() on an empty event queue")
            self._open_batch()
        if self._cur_urgent:
            event = self._cur_urgent.popleft()
        elif self._cur_normal:
            event = self._cur_normal.popleft()
        else:
            event = heappop(self._cur_rare)[2]
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it rather than losing it.
            raise event._value

    def _drain(self, stop=(), deadline: float = _INF) -> None:
        """The dispatch loop: consume batches until a bound is hit.

        Runs until the queue is empty, ``stop`` (a list filled by a
        sentinel callback) becomes non-empty, or the next timestamp
        would open past ``deadline``.  This is the single hot loop of
        the whole simulator — everything it needs is cached in locals
        and the per-event work is fully inlined.
        """
        heap = self._heap
        urgent = self._cur_urgent
        normal = self._cur_normal
        rare = self._cur_rare
        profile = self._profile
        pop_urgent = urgent.popleft
        pop_normal = normal.popleft
        while True:
            if urgent:
                event = pop_urgent()
            elif normal:
                event = pop_normal()
            elif rare:
                event = heappop(rare)[2]
            elif heap:
                when = heap[0][0]
                if when > deadline:
                    return
                self._now = when
                entry = heappop(heap)
                if heap and heap[0][0] == when:
                    # Timestamp collision: stage every entry at ``when``
                    # so (priority, seq) interleaving stays exact.
                    priority = entry[1]
                    if priority == 1:
                        normal.append(entry[3])
                    elif priority == 0:
                        urgent.append(entry[3])
                    else:
                        heappush(rare, (priority, entry[2], entry[3]))
                    while heap and heap[0][0] == when:
                        entry = heappop(heap)
                        priority = entry[1]
                        if priority == 1:
                            normal.append(entry[3])
                        elif priority == 0:
                            urgent.append(entry[3])
                        else:
                            heappush(rare, (priority, entry[2], entry[3]))
                    continue
                # Sole event at this timestamp: dispatch straight from
                # the heap without touching the batch deques.
                event = entry[3]
            else:
                return
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            if profile is None:
                for callback in callbacks:
                    callback(event)
            else:
                profile.dispatch(self._now, event, callbacks)
            if not event._ok and not event._defused:
                raise event._value
            if stop:
                return

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or event fires.

        Returns the value of ``until`` when it is an event; otherwise
        ``None``.
        """
        if until is None:
            self._drain()
            return None
        if isinstance(until, Event):
            sentinel = until
            if sentinel._processed:
                return sentinel.value
            if sentinel.callbacks is None:
                return sentinel.value
            done: list = []
            sentinel.callbacks.append(done.append)
            self._drain(stop=done)
            if not done:
                raise SimulationError(
                    "run(until=event): queue drained before event fired"
                )
            if sentinel._ok:
                return sentinel._value
            sentinel.defuse()
            raise sentinel._value
        # numeric deadline
        deadline = float(until)
        if deadline < self._now:
            raise SimTimeError(f"until={deadline} is in the past (now={self._now})")
        self._drain(deadline=deadline)
        self._now = deadline
        return None

    def __repr__(self) -> str:
        queued = (len(self._heap) + len(self._cur_rare)
                  + len(self._cur_urgent) + len(self._cur_normal))
        return f"<Environment now={self._now} queued={queued}>"
