"""Environment and basic event types for the DES kernel.

The scheduling queue is a binary heap keyed on ``(time, priority, seq)``.
``seq`` is a monotonically increasing insertion counter, which makes
same-time, same-priority events FIFO and the whole simulation
deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimTimeError, SimulationError

#: Priority for events that must fire before ordinary ones at the same time
#: (used internally for process initialization and interrupts).
PRIORITY_URGENT: int = 0
#: Default priority for ordinary events.
PRIORITY_NORMAL: int = 1

_PENDING = object()  # sentinel: event value not yet set


class Event:
    """A happening at a point in simulated time.

    An event moves through three states:

    * *pending* — created, not yet scheduled;
    * *triggered* — given a value (or failure) and placed on the queue;
    * *processed* — callbacks have run.

    Processes wait on events by ``yield``-ing them; arbitrary code can
    attach callbacks via :attr:`callbacks`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: list of callables invoked with this event when it is processed;
        #: ``None`` once processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        self._defused = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run.

        An event that fails with no waiting process would otherwise abort
        :meth:`Environment.run` to avoid silently swallowing errors.
        """
        self._defused = True

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env._schedule(self, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Timeouts are triggered at construction; yielding one suspends the
    process for ``delay`` units of virtual time.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimTimeError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, PRIORITY_NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Environment:
    """Execution environment: virtual clock plus event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        #: The process currently being resumed, if any.
        self.active_process = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ------------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Start a new simulated process running ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> "Event":
        """Event that fires when every event in ``events`` has fired."""
        from repro.sim.events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> "Event":
        """Event that fires when at least one event in ``events`` has fired."""
        from repro.sim.events import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling ------------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimTimeError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event from the queue."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimTimeError(f"event scheduled in the past: {when} < {self._now}")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it rather than losing it.
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or event fires.

        Returns the value of ``until`` when it is an event; otherwise
        ``None``.
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            sentinel = until
            done = []

            def _stop(ev: Event) -> None:
                done.append(ev)

            if sentinel.processed:
                return sentinel.value
            if sentinel.callbacks is None:
                return sentinel.value
            sentinel.callbacks.append(_stop)
            while not done:
                if not self._queue:
                    raise SimulationError(
                        "run(until=event): queue drained before event fired"
                    )
                self.step()
            if sentinel._ok:
                return sentinel.value
            sentinel.defuse()
            raise sentinel.value
        # numeric deadline
        deadline = float(until)
        if deadline < self._now:
            raise SimTimeError(f"until={deadline} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={len(self._queue)}>"
