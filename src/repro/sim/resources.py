"""Shared-resource primitives: counted resources and object stores.

These model contention points in the simulated system: NIC processing
engines, the serializing wire, and bounded queues all sit on top of
:class:`Resource` or :class:`Store`.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.core import Environment, Event


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Fires when the slot is granted.  Must be released via
    :meth:`Resource.release` (or used as a context manager inside a
    process via ``with``-style helpers in caller code).
    """

    __slots__ = ("resource", "priority", "_key")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO wait queue.

    >>> res = Resource(env, capacity=1)
    >>> def worker(env, res):
    ...     req = res.request()
    ...     yield req
    ...     yield env.timeout(1.0)     # hold the resource
    ...     res.release(req)
    """

    __slots__ = ("env", "capacity", "_users", "_waiting")

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self, priority)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed(req)
        else:
            self._enqueue(req)
        return req

    def _enqueue(self, req: Request) -> None:
        self._waiting.append(req)

    def _dequeue(self) -> Optional[Request]:
        return self._waiting.popleft() if self._waiting else None

    def release(self, req: Request) -> None:
        """Return a previously granted slot and wake the next waiter."""
        if req in self._users:
            self._users.remove(req)
        elif req in self._waiting:
            # Cancelling a queued request.
            self._waiting.remove(req)
            return
        else:
            raise SimulationError("release() of a request that holds no slot")
        nxt = self._dequeue()
        if nxt is not None:
            self._users.add(nxt)
            nxt.succeed(nxt)


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served lowest-priority-first.

    Ties are FIFO (stable by insertion sequence).
    """

    __slots__ = ("_counter", "_heap")

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._counter = 0
        self._heap: list[tuple[int, int, Request]] = []

    def _enqueue(self, req: Request) -> None:
        heappush(self._heap, (req.priority, self._counter, req))
        self._counter += 1

    def _dequeue(self) -> Optional[Request]:
        while self._heap:
            _, _, req = heappop(self._heap)
            return req
        return None

    @property
    def queue_length(self) -> int:
        return len(self._heap)

    def release(self, req: Request) -> None:
        if req in self._users:
            self._users.remove(req)
        else:
            # Cancel from heap lazily.
            self._heap = [entry for entry in self._heap if entry[2] is not req]
            heapify(self._heap)
            return
        nxt = self._dequeue()
        if nxt is not None:
            self._users.add(nxt)
            nxt.succeed(nxt)


class Store:
    """An unbounded (or bounded) FIFO of Python objects.

    ``put`` fires immediately unless the store is full; ``get`` fires when
    an item is available.  Used for message queues between simulated
    components.
    """

    __slots__ = ("env", "capacity", "items", "_getters", "_putters")

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; returned event fires once it is stored."""
        ev = Event(self.env)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def drain(self) -> list:
        """Remove and return every queued item (no waiter interaction).

        Used when a consumer dies (a QP dropping to ERROR flushes its
        send queue): parked putters, if any, are admitted first so their
        items drain too and their events fire.
        """
        while self._putters and len(self.items) < self.capacity:
            putter, item = self._putters.popleft()
            self.items.append(item)
            putter.succeed(None)
        out = list(self.items)
        self.items.clear()
        return out

    def get(self) -> Event:
        """Withdraw the oldest item; returned event fires with the item."""
        ev = Event(self.env)
        if self.items:
            ev.succeed(self.items.popleft())
            if self._putters:
                putter, item = self._putters.popleft()
                self.items.append(item)
                putter.succeed(None)
        else:
            self._getters.append(ev)
        return ev
