"""Deterministic named random streams.

Every source of randomness in a simulation (per-thread noise, jitter,
workload generation) draws from its own substream, derived from a single
root seed plus the stream's name.  Two runs with the same root seed see
identical randomness regardless of the order streams are created or
consumed, which keeps experiments reproducible and lets paired
comparisons (baseline vs. aggregator) share identical noise.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngStreams:
    """Factory for independent, name-keyed ``numpy.random.Generator``\\ s."""

    def __init__(self, root_seed: int = 0):
        if root_seed < 0:
            raise ValueError(f"root_seed must be >= 0, got {root_seed}")
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(self._derive(name)))
            self._streams[name] = gen
        return gen

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(
            f"{self.root_seed}:{name}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "little")

    def spawn(self, name: str) -> "RngStreams":
        """A child factory whose streams are independent of this one's."""
        return RngStreams(self._derive(f"spawn:{name}"))

    def __repr__(self) -> str:
        return f"<RngStreams seed={self.root_seed} streams={len(self._streams)}>"
