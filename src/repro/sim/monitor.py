"""Lightweight event tracing for simulations.

A :class:`Trace` collects timestamped, categorized records.  The IB
layer, the MPI runtime, and the profiler all write to a shared trace so
experiments can be dissected after a run (arrival patterns, wire
occupancy, lock contention).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Virtual time of the event, seconds.
    category:
        Dotted namespace, e.g. ``"ib.post_send"`` or ``"mpi.pready"``.
    subject:
        The entity the record is about (rank, QP number, ...).
    data:
        Free-form payload.
    """

    time: float
    category: str
    subject: Any = None
    data: dict = field(default_factory=dict)


class Trace:
    """An append-only record log with category filtering.

    Tracing can be disabled globally (``enabled=False``) to keep large
    benchmark runs cheap; ``record`` then becomes a no-op.

    ``max_records`` caps memory on long application runs: when set, the
    log becomes a ring buffer holding the *most recent* ``max_records``
    entries, and :attr:`dropped` counts how many older records were
    evicted.  The default (``None``) preserves the historical unbounded
    behaviour.
    """

    def __init__(self, enabled: bool = True,
                 max_records: Optional[int] = None):
        if max_records is not None and max_records < 1:
            raise ValueError(
                f"max_records must be >= 1 or None, got {max_records}")
        self.enabled = enabled
        self.max_records = max_records
        #: Records evicted from the ring buffer since the last clear.
        self.dropped = 0
        self.records: deque[TraceRecord] = deque(maxlen=max_records)

    def record(
        self,
        time: float,
        category: str,
        subject: Any = None,
        **data: Any,
    ) -> None:
        """Append a record (no-op when disabled; evicts when capped)."""
        if not self.enabled:
            return
        if (self.max_records is not None
                and len(self.records) == self.max_records):
            self.dropped += 1
        self.records.append(TraceRecord(time, category, subject, data))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(
        self,
        category: Optional[str] = None,
        subject: Any = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        """Records matching all given criteria.

        ``category`` matches exact or prefix (``"ib."`` prefix matches
        ``"ib.post_send"``); ``subject`` matches by equality.
        """
        out = []
        for rec in self.records:
            if category is not None:
                if not (rec.category == category or rec.category.startswith(category + ".")
                        or (category.endswith(".") and rec.category.startswith(category))):
                    continue
            if subject is not None and rec.subject != subject:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def categories(self) -> set[str]:
        """Distinct categories present in the trace."""
        return {rec.category for rec in self.records}


class Counters:
    """Named monotonic counters for rare events (faults, retries).

    Unlike :class:`Trace`, counters are always on: incrementing is one
    dict operation and costs no virtual time, so the fault/recovery
    machinery can account retransmits, NAKs, and reconnects without a
    trace being enabled.  Dotted names namespace the producers
    (``ib.retransmits``, ``fault.chunks_lost``, ``mpi.replayed_wrs``).
    """

    def __init__(self):
        self._counts: dict[str, int] = {}

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero)."""
        self._counts[name] = self._counts.get(name, 0) + n

    def get(self, name: str) -> int:
        """Current value of ``name`` (zero if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all counters (a copy)."""
        return dict(self._counts)

    def snapshot(self) -> dict[str, int]:
        """Alias of :meth:`as_dict` for delta accounting with
        :meth:`since` (the autotune controller's per-iteration window)."""
        return dict(self._counts)

    def since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Per-counter increments since ``snapshot``; zero deltas omitted.

        Counters are monotonic, so the delta is a plain subtraction;
        names created after the snapshot count from zero.
        """
        out = {}
        for name, value in self._counts.items():
            delta = value - snapshot.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def clear(self) -> None:
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return f"<Counters {self._counts!r}>"
