"""Kernel instrumentation: per-event-type dispatch counts and timings.

The dispatch loop in :meth:`repro.sim.core.Environment._drain` costs
nothing when profiling is off (a single ``is None`` test per event).
When a :class:`KernelProfile` is attached, every dispatch is routed
through :meth:`KernelProfile.dispatch`, which runs the callbacks while
accumulating wall-clock time and a histogram bucketed by event type.

Usage::

    env = Environment()
    prof = KernelProfile.attach(env)
    ... run the simulation ...
    print(prof.report())

The ``repro-bench bench run --profile-cpu`` flag layers a cProfile
capture of the whole experiment on top of this (see ``repro.cli``);
this module covers the virtual-time view, cProfile the CPU view.
"""

from __future__ import annotations

import time
from typing import Optional

#: Histogram bucket edges for per-dispatch wall time (seconds).
_BUCKETS = (1e-7, 1e-6, 1e-5, 1e-4, 1e-3, float("inf"))


class EventTypeStats:
    """Accumulated dispatch statistics for one event type."""

    __slots__ = ("count", "callbacks", "seconds", "hist")

    def __init__(self) -> None:
        self.count = 0
        self.callbacks = 0
        self.seconds = 0.0
        self.hist = [0] * len(_BUCKETS)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "callbacks": self.callbacks,
            "seconds": self.seconds,
            "hist": {f"<{edge:g}s": n for edge, n in zip(_BUCKETS, self.hist)},
        }


class KernelProfile:
    """Event-count / dispatch-time histograms, keyed by event type."""

    __slots__ = ("stats", "events", "first_dispatch", "last_dispatch", "_clock")

    def __init__(self, clock=time.perf_counter) -> None:
        self.stats: dict[str, EventTypeStats] = {}
        self.events = 0
        self.first_dispatch: Optional[float] = None
        self.last_dispatch: Optional[float] = None
        self._clock = clock

    @classmethod
    def attach(cls, env) -> "KernelProfile":
        """Create a profile and hook it into ``env``'s dispatch loop."""
        profile = cls()
        env._profile = profile
        return profile

    @staticmethod
    def detach(env) -> None:
        env._profile = None

    def dispatch(self, now: float, event, callbacks) -> None:
        """Run ``callbacks`` for ``event``, recording count and elapsed time.

        Called from ``Environment._drain``/``step`` in place of the raw
        callback loop; must preserve its semantics exactly (callbacks run
        in order; exceptions propagate).
        """
        clock = self._clock
        start = clock()
        for callback in callbacks:
            callback(event)
        elapsed = clock() - start

        if self.first_dispatch is None:
            self.first_dispatch = now
        self.last_dispatch = now
        self.events += 1

        key = type(event).__name__
        stats = self.stats.get(key)
        if stats is None:
            stats = self.stats[key] = EventTypeStats()
        stats.count += 1
        stats.callbacks += len(callbacks)
        stats.seconds += elapsed
        for i, edge in enumerate(_BUCKETS):
            if elapsed < edge:
                stats.hist[i] += 1
                break

    # -- reporting -----------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "events": self.events,
            "virtual_span": (
                None if self.first_dispatch is None
                else self.last_dispatch - self.first_dispatch
            ),
            "by_type": {k: v.as_dict() for k, v in sorted(self.stats.items())},
        }

    def report(self) -> str:
        """Human-readable table, most dispatch-time-expensive types first."""
        lines = [f"{'event type':<20} {'count':>10} {'cbs':>10} {'seconds':>10}"]
        by_cost = sorted(self.stats.items(),
                         key=lambda kv: kv[1].seconds, reverse=True)
        for key, stats in by_cost:
            lines.append(
                f"{key:<20} {stats.count:>10} {stats.callbacks:>10}"
                f" {stats.seconds:>10.4f}"
            )
        lines.append(f"{'total':<20} {self.events:>10}")
        return "\n".join(lines)
