"""Simulated processes: generators driven by the event loop."""

from __future__ import annotations

from heapq import heappush
from typing import Any, Generator, Optional

from repro.errors import Interrupt, ProcessError
from repro.errors import SimTimeError
from repro.sim.core import Environment, Event, PRIORITY_URGENT, _Wake


class Process(Event):
    """A running simulated activity.

    Wraps a generator.  Each value the generator yields must be an
    :class:`Event` or a bare non-negative number; the process sleeps
    until that event fires (a number ``d`` sleeps for ``d`` seconds,
    exactly like ``yield env.timeout(d)`` but allocation-free), then
    resumes with the event's value (or has the event's exception thrown
    into it).  A :class:`Process` is itself an event that fires when the
    generator returns (value = return value) or raises (failure).
    """

    __slots__ = ("_generator", "_send", "_throw", "_target", "name")

    def __init__(self, env: Environment, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise ProcessError(f"process body must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        #: The event this process is currently waiting on (None if ready).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current time, ahead of normal events.  Bootstrap
        # wakeups are kernel-internal and recycled through the wake pool.
        pool = env._wake_pool
        if pool:
            bootstrap = pool.pop()
            bootstrap._ok = True
            bootstrap._value = None
            bootstrap._processed = False
            bootstrap._defused = False
            bootstrap.callbacks = [self._resume]
        else:
            bootstrap = _Wake(env)
            bootstrap._ok = True
            bootstrap._value = None
            bootstrap.callbacks.append(self._resume)
        env._cur_urgent.append(bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        The process stops waiting on its current target and must handle
        (or propagate) the interrupt.  Interrupting a finished process is
        an error; interrupting a process that is itself waiting on another
        process is allowed.
        """
        if not self.is_alive:
            raise ProcessError(f"cannot interrupt finished process {self.name!r}")
        if self.env.active_process is self:
            raise ProcessError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env._cur_urgent.append(interrupt_event)

    # -- internal -------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        target = self._target
        if target is not None and event is not target:
            # Stale wakeup: an interrupt arrived while we waited on some
            # target; unhook from that target so its eventual firing does
            # not resume us twice.
            cbs = target.callbacks
            if cbs is not None:
                try:
                    cbs.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        env = self.env
        env.active_process = self
        ok = event._ok
        value = event._value
        if type(event) is _Wake:
            # Kernel-internal wakeup: nothing else holds a reference once
            # its outcome is read, so recycle it.
            env._wake_pool.append(event)
        try:
            if ok:
                result = self._send(value)
            else:
                # Mark handled: the generator is being given the exception.
                event._defused = True
                result = self._throw(value)
        except StopIteration as stop:
            env.active_process = None
            self.succeed(stop.value, priority=PRIORITY_URGENT)
            return
        except BaseException as exc:
            env.active_process = None
            self.fail(exc, priority=PRIORITY_URGENT)
            return
        env.active_process = None
        cls = type(result)
        if cls is float or cls is int:
            # Sleep protocol: a bare non-negative number yields a pure
            # delay with no user-visible Timeout object.  Scheduling is
            # exactly a ``yield env.timeout(result)`` — same position in
            # the (time, priority, seq) order — but the parked event is
            # a recycled kernel wake, so the hot sleep path allocates
            # nothing.
            if result < 0.0:
                raise SimTimeError(f"negative sleep delay: {result}")
            pool = env._wake_pool
            if pool:
                wake = pool.pop()
                wake._processed = False
                wake._defused = False
                wake.callbacks = [self._resume]
            else:
                wake = _Wake(env)
                wake.callbacks.append(self._resume)
            wake._ok = True
            wake._value = None
            now = env._now
            when = now + result
            if when > now:
                seq = env._seq
                env._seq = seq + 1
                heappush(env._heap, (when, 1, seq, wake))
            else:
                env._cur_normal.append(wake)
            self._target = wake
            return
        if isinstance(result, Event):
            if result.callbacks is not None:
                # The common case: park on a live event.
                self._target = result
                result.callbacks.append(self._resume)
                return
        else:
            error = ProcessError(
                f"process {self.name!r} yielded non-event {result!r}"
            )
            try:
                self._throw(error)
            except BaseException as exc:
                self.fail(exc, priority=PRIORITY_URGENT)
                return
            raise error
        # Already processed: resume immediately at the current time.
        pool = env._wake_pool
        if pool:
            wake = pool.pop()
            wake._processed = False
            wake.callbacks = [self._resume]
        else:
            wake = _Wake(env)
            wake.callbacks.append(self._resume)
        wake._ok = result._ok
        wake._value = result._value
        wake._defused = not result._ok
        self._target = wake
        env._cur_urgent.append(wake)

    def __repr__(self) -> str:
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
