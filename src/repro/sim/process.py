"""Simulated processes: generators driven by the event loop."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import Interrupt, ProcessError
from repro.sim.core import Environment, Event, PRIORITY_URGENT


class Process(Event):
    """A running simulated activity.

    Wraps a generator.  Each value the generator yields must be an
    :class:`Event`; the process sleeps until that event fires, then
    resumes with the event's value (or has the event's exception thrown
    into it).  A :class:`Process` is itself an event that fires when the
    generator returns (value = return value) or raises (failure).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: Environment, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise ProcessError(f"process body must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None if ready).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current time, ahead of normal events.
        bootstrap = Event(env)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks.append(self._resume)
        env._schedule(bootstrap, PRIORITY_URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        The process stops waiting on its current target and must handle
        (or propagate) the interrupt.  Interrupting a finished process is
        an error; interrupting a process that is itself waiting on another
        process is allowed.
        """
        if not self.is_alive:
            raise ProcessError(f"cannot interrupt finished process {self.name!r}")
        if self.env.active_process is self:
            raise ProcessError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env._schedule(interrupt_event, PRIORITY_URGENT)

    # -- internal -------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        # Stale wakeup: an interrupt arrived while we waited on some target;
        # unhook from that target so its eventual firing does not resume us
        # twice.
        if self._target is not None and event is not self._target:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        self.env.active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                # Mark handled: the generator is being given the exception.
                event._defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env.active_process = None
            self.succeed(stop.value, priority=PRIORITY_URGENT)
            return
        except BaseException as exc:
            self.env.active_process = None
            self.fail(exc, priority=PRIORITY_URGENT)
            return
        self.env.active_process = None
        if not isinstance(result, Event):
            error = ProcessError(
                f"process {self.name!r} yielded non-event {result!r}"
            )
            try:
                self._generator.throw(error)
            except BaseException as exc:
                self.fail(exc, priority=PRIORITY_URGENT)
                return
            raise error
        if result.callbacks is None:
            # Already processed: resume immediately at the current time.
            wake = Event(self.env)
            wake._ok = result._ok
            wake._value = result._value
            if not result._ok:
                wake._defused = True
            self._target = wake
            wake.callbacks.append(self._resume)
            self.env._schedule(wake, PRIORITY_URGENT)
        else:
            self._target = result
            result.callbacks.append(self._resume)

    def __repr__(self) -> str:
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
