"""Discrete-event simulation kernel.

A small, deterministic, generator-based simulator in the style of SimPy,
written from scratch so the package has no dependency beyond numpy/scipy.
Simulated processes are Python generators that yield :class:`Event`
objects; the :class:`Environment` advances virtual time and resumes
processes when their events fire.

Determinism guarantees:

* events scheduled for the same timestamp fire in (priority, insertion
  order), so repeated runs of the same model produce identical traces;
* all randomness must come through :class:`~repro.sim.rng.RngStreams`,
  which derives independent named substreams from a single seed.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(1.5)
...     return env.now
>>> p = env.process(hello(env))
>>> env.run()
>>> p.value
1.5
"""

from repro.sim.core import (
    Environment,
    Event,
    Timeout,
    PRIORITY_URGENT,
    PRIORITY_NORMAL,
)
from repro.sim.process import Process
from repro.sim.events import AllOf, AnyOf, Condition
from repro.sim.resources import Resource, Store, PriorityResource
from repro.sim.sync import SimLock, SimSemaphore, AtomicCounter, SimBarrier, Notify
from repro.sim.rng import RngStreams
from repro.sim.monitor import Counters, Trace, TraceRecord

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Condition",
    "Resource",
    "PriorityResource",
    "Store",
    "SimLock",
    "SimSemaphore",
    "SimBarrier",
    "AtomicCounter",
    "Notify",
    "RngStreams",
    "Counters",
    "Trace",
    "TraceRecord",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
]
