"""Exception hierarchy for the repro package.

Every layer of the stack raises subclasses of :class:`ReproError`, so a
caller can catch a single type at an API boundary while tests can assert
on precise failure modes.  The IB layer mirrors the ``errno``-style
failures of real verbs calls (posting to a QP in the wrong state, queue
overflow, protection faults) and the MPI layer mirrors the MPI error
classes relevant to partitioned communication.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# Simulation kernel errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulation kernel errors."""


class SimTimeError(SimulationError):
    """Raised when an event is scheduled in the past or with invalid delay."""


class ProcessError(SimulationError):
    """Raised when a simulated process is used incorrectly."""


class Interrupt(SimulationError):
    """Raised inside a simulated process that was interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


# ---------------------------------------------------------------------------
# InfiniBand verbs errors
# ---------------------------------------------------------------------------


class IBError(ReproError):
    """Base class for simulated InfiniBand verbs failures."""


class QPStateError(IBError):
    """Operation attempted on a queue pair in an incompatible state."""


class QPOverflowError(IBError):
    """Posting a work request would exceed the queue capacity.

    Mirrors ``ENOMEM`` from ``ibv_post_send`` when the send queue is full
    or the outstanding-RDMA limit (16 on the paper's ConnectX-5 hardware)
    would be exceeded.
    """


class ProtectionError(IBError):
    """Access outside a registered memory region or with a wrong key.

    The simulated equivalent of a local/remote protection fault
    (``IBV_WC_LOC_PROT_ERR`` / ``IBV_WC_REM_ACCESS_ERR``).
    """


class CompletionError(IBError):
    """A work completion was returned with a non-success status."""


class TransportError(IBError):
    """A transport-level delivery failure (retryable or terminal).

    Base class for failures produced by the fault-injection subsystem
    (:mod:`repro.faults`): lost chunks, NAKed messages, dead links.
    Callers that can re-establish a channel catch this; callers that
    cannot treat it as fatal.
    """


class RetryExhaustedError(TransportError):
    """The NIC gave up retransmitting (``IBV_WC_RETRY_EXC_ERR``).

    Raised through the MPI layer when a work request exhausted the QP's
    ``retry_cnt`` (ACK timeouts) or ``rnr_retry`` (RNR NAK) budget and
    the queue pair transitioned to ERROR.
    """


# ---------------------------------------------------------------------------
# MPI runtime errors
# ---------------------------------------------------------------------------


class MPIError(ReproError):
    """Base class for simulated MPI runtime failures."""


class ChannelDownError(MPIError):
    """A communication channel is in a failed state.

    Raised when an operation needs a QP that sits in ERROR (or RESET)
    and no recovery path is armed to bring it back to RTS.
    """


class MatchingError(MPIError):
    """Psend/Precv matching failed (count/size mismatch between peers)."""


class PartitionError(MPIError):
    """Invalid partition index or partition state transition."""


class RequestError(MPIError):
    """Invalid use of a (persistent) request object."""


# ---------------------------------------------------------------------------
# Configuration / tuning errors
# ---------------------------------------------------------------------------


class ConfigError(ReproError):
    """Invalid configuration value."""


class TuningError(ReproError):
    """Tuning table lookup or construction failed."""
