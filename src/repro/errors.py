"""Exception hierarchy for the repro package.

Every layer of the stack raises subclasses of :class:`ReproError`, so a
caller can catch a single type at an API boundary while tests can assert
on precise failure modes.  The IB layer mirrors the ``errno``-style
failures of real verbs calls (posting to a QP in the wrong state, queue
overflow, protection faults) and the MPI layer mirrors the MPI error
classes relevant to partitioned communication.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class FailureContext:
    """Mixin: structured localization data on transport failures.

    Chaos reports (and users) localize a failure from the exception
    object alone — which edge, which epoch, which partitions, how many
    retries — instead of digging through traces.  All fields are
    optional keyword arguments; plain-message construction still works
    everywhere.
    """

    #: Recognized context fields, in display order.
    _FIELDS = ("edge", "epoch", "partitions", "retries", "wr_id",
               "qp_num", "status")

    def __init__(self, message: str = "", **context):
        unknown = set(context) - set(self._FIELDS)
        if unknown:
            raise TypeError(
                f"unknown failure-context fields: {sorted(unknown)}")
        #: (source rank, destination rank) of the failed edge.
        self.edge = context.get("edge")
        #: The request round / epoch the failure interrupted.
        self.epoch = context.get("epoch")
        #: Partition ``(start, count)`` runs carried by the failed work.
        self.partitions = context.get("partitions")
        #: Retry budgets in force when the transport gave up.
        self.retries = context.get("retries")
        self.wr_id = context.get("wr_id")
        self.qp_num = context.get("qp_num")
        #: Completion/QP status string at failure time.
        self.status = context.get("status")
        details = ", ".join(
            f"{name}={context[name]!r}" for name in self._FIELDS
            if context.get(name) is not None)
        super().__init__(f"{message} [{details}]" if details else message)

    @property
    def context(self) -> dict:
        """The non-empty context fields as a plain dict."""
        return {name: getattr(self, name) for name in self._FIELDS
                if getattr(self, name) is not None}


# ---------------------------------------------------------------------------
# Simulation kernel errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event simulation kernel errors."""


class SimTimeError(SimulationError):
    """Raised when an event is scheduled in the past or with invalid delay."""


class ProcessError(SimulationError):
    """Raised when a simulated process is used incorrectly."""


class Interrupt(SimulationError):
    """Raised inside a simulated process that was interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


# ---------------------------------------------------------------------------
# InfiniBand verbs errors
# ---------------------------------------------------------------------------


class IBError(ReproError):
    """Base class for simulated InfiniBand verbs failures."""


class QPStateError(IBError):
    """Operation attempted on a queue pair in an incompatible state."""


class QPOverflowError(IBError):
    """Posting a work request would exceed the queue capacity.

    Mirrors ``ENOMEM`` from ``ibv_post_send`` when the send queue is full
    or the outstanding-RDMA limit (16 on the paper's ConnectX-5 hardware)
    would be exceeded.
    """


class ProtectionError(IBError):
    """Access outside a registered memory region or with a wrong key.

    The simulated equivalent of a local/remote protection fault
    (``IBV_WC_LOC_PROT_ERR`` / ``IBV_WC_REM_ACCESS_ERR``).
    """


class CompletionError(IBError):
    """A work completion was returned with a non-success status."""


class TransportError(IBError):
    """A transport-level delivery failure (retryable or terminal).

    Base class for failures produced by the fault-injection subsystem
    (:mod:`repro.faults`): lost chunks, NAKed messages, dead links.
    Callers that can re-establish a channel catch this; callers that
    cannot treat it as fatal.
    """


class RetryExhaustedError(FailureContext, TransportError):
    """The NIC gave up retransmitting (``IBV_WC_RETRY_EXC_ERR``).

    Raised through the MPI layer when a work request exhausted the QP's
    ``retry_cnt`` (ACK timeouts) or ``rnr_retry`` (RNR NAK) budget and
    the queue pair transitioned to ERROR.  Carries the structured
    :class:`FailureContext` fields (edge, epoch, partitions, retries).
    """


# ---------------------------------------------------------------------------
# MPI runtime errors
# ---------------------------------------------------------------------------


class MPIError(ReproError):
    """Base class for simulated MPI runtime failures."""


class ChannelDownError(FailureContext, MPIError):
    """A communication channel is in a failed state.

    Raised when an operation needs a QP that sits in ERROR (or RESET)
    and no recovery path is armed to bring it back to RTS.  Carries the
    structured :class:`FailureContext` fields (edge, epoch, partitions).
    """


class EpochDeadlineError(FailureContext, MPIError):
    """A Start..Wait epoch overran its configured deadline.

    Raised from :meth:`repro.engine.ProgressEngine.wait_until` when the
    chaos watchdog layer arms ``PartitionedConfig.epoch_deadline`` — a
    hung edge surfaces as a typed, localizable error instead of
    spinning the progress engine forever.
    """


class MatchingError(MPIError):
    """Psend/Precv matching failed (count/size mismatch between peers)."""


class PartitionError(MPIError):
    """Invalid partition index or partition state transition."""


class RequestError(MPIError):
    """Invalid use of a (persistent) request object."""


# ---------------------------------------------------------------------------
# Configuration / tuning errors
# ---------------------------------------------------------------------------


class ConfigError(ReproError):
    """Invalid configuration value."""


class TuningError(ReproError):
    """Tuning table lookup or construction failed."""
