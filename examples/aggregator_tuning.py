#!/usr/bin/env python3
"""Brute force vs. model: building a tuning table and checking PLogGP.

Reproduces the paper's Section IV-B/IV-C comparison in miniature: an
exhaustive search over (transport partitions, QPs) on the simulated
fabric — the equivalent of the authors' 23-hour Niagara run, in
virtual time — next to the PLogGP model's instant prediction, plus the
measured gap between the two (the paper saw at most ~9 %).

Run:  python examples/aggregator_tuning.py
"""

from repro import FixedAggregation, PLogGPAggregator
from repro.bench.overhead import run_overhead
from repro.bench.reporting import format_table
from repro.config import NIAGARA
from repro.core.tuning_table import build_tuning_table
from repro.model.tables import NIAGARA_LOGGP
from repro.units import KiB, MiB, fmt_bytes, ms

N_USER = 16
SIZES = [64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB]


def main():
    print(f"Brute-force search over transport partitions x QPs "
          f"({N_USER} user partitions)...")
    table = build_tuning_table(
        n_user_counts=[N_USER],
        message_sizes=SIZES,
        iterations=10,
        warmup=2,
    )
    model = PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4))
    rows = []
    for size in SIZES:
        bf_transport, bf_qps = table.lookup(N_USER, size)
        plan = model.plan(N_USER, size // N_USER, NIAGARA)
        t_bf = run_overhead(FixedAggregation(bf_transport, bf_qps),
                            n_user=N_USER, total_bytes=size,
                            iterations=10, warmup=2).mean_time
        t_model = run_overhead(FixedAggregation(plan.n_transport, plan.n_qps),
                               n_user=N_USER, total_bytes=size,
                               iterations=10, warmup=2).mean_time
        gap = (t_model - t_bf) / t_bf * 100
        rows.append([
            fmt_bytes(size),
            f"T={bf_transport} QP={bf_qps}",
            f"T={plan.n_transport} QP={plan.n_qps}",
            f"{gap:+.1f}%",
        ])
    print(format_table(
        ["size", "brute force", "PLogGP model", "model vs. brute force"],
        rows))
    print("\nReading: the model lands close to the exhaustive search at")
    print("a tiny fraction of the cost — the paper's core argument for")
    print("the PLogGP aggregator (it saw at most ~9% difference).")


if __name__ == "__main__":
    main()
