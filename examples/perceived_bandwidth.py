#!/usr/bin/env python3
"""Perceived bandwidth under thread imbalance (paper Fig. 9, condensed).

Compares the three designs at several message sizes under the paper's
workload (100 ms compute, 4 % single-thread-delay noise, 32 partitions):

* ``part_persist`` — the Open MPI + UCX baseline, no aggregation;
* the PLogGP aggregator — static model-driven grouping;
* the timer-based PLogGP aggregator — δ-flush of early arrivals.

The "1-thread line" column is the bandwidth a single-threaded
point-to-point implementation could deliver at most; early-bird designs
perceive far more for medium sizes because n-1 partitions overlap the
laggard's delay.

Run:  python examples/perceived_bandwidth.py          (about a minute)
      python examples/perceived_bandwidth.py --fast   (fewer iterations)
"""

import sys

from repro import PLogGPAggregator, TimerPLogGPAggregator
from repro.bench.perceived import run_perceived_bandwidth, single_thread_line
from repro.bench.reporting import format_bandwidth_series
from repro.model.tables import NIAGARA_LOGGP
from repro.units import MiB, ms, us


def main():
    fast = "--fast" in sys.argv
    iterations, warmup = (3, 1) if fast else (10, 3)
    sizes = [1 * MiB, 8 * MiB, 32 * MiB] if fast else \
            [1 * MiB, 4 * MiB, 8 * MiB, 32 * MiB, 128 * MiB]
    designs = {
        "persist": None,
        "ploggp": PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4)),
        "timer(d=3ms)": TimerPLogGPAggregator(
            NIAGARA_LOGGP, delay=ms(4), delta=us(3000)),
    }
    series = {name: {} for name in designs}
    for size in sizes:
        for name, module in designs.items():
            result = run_perceived_bandwidth(
                module, n_user=32, total_bytes=size,
                compute=100e-3, noise_fraction=0.04,
                iterations=iterations, warmup=warmup)
            series[name][size] = result.perceived_bandwidth
    print("Perceived bandwidth, 32 partitions, 100ms compute, 4% noise")
    print(format_bandwidth_series(series, reference=single_thread_line()))
    print("\nReading: persist and the timer design keep the laggard's")
    print("partition small, so the perceived bandwidth stays high; the")
    print("static PLogGP grouping makes the laggard's transport partition")
    print("bigger and pays for it.  At 128MiB everyone is wire-limited.")


if __name__ == "__main__":
    main()
