#!/usr/bin/env python3
"""Watching the wire: the early-bird window, made visible.

Enables tracing and compares the sender's egress timeline for the
static PLogGP aggregator against the timer-based design under a heavy
laggard.  The static design leaves the wire idle while its transport
group waits for the laggard (the paper's Fig. 10 argument); the timer
design fills that window with the early partitions.

Run:  python examples/wire_utilization.py
"""

from repro import (
    Cluster,
    ComputePhase,
    NativeSpec,
    NIAGARA,
    PartitionedBuffer,
    PLogGPAggregator,
    SingleThreadDelay,
    TimerPLogGPAggregator,
    WorkerTeam,
)
from repro.model.tables import NIAGARA_LOGGP
from repro.units import MiB, fmt_bytes, fmt_time, ms, us

N_PARTITIONS = 32
TOTAL = 8 * MiB
COMPUTE = ms(10)
NOISE = 0.2  # 2 ms laggard: a wide window


def run(aggregator):
    config = NIAGARA.with_changes(trace_enabled=True, real_buffers=False)
    cluster = Cluster(n_nodes=2, config=config)
    sender_rank, receiver_rank = cluster.ranks(2)
    sbuf = PartitionedBuffer(N_PARTITIONS, TOTAL // N_PARTITIONS,
                             backed=False)
    rbuf = PartitionedBuffer(N_PARTITIONS, TOTAL // N_PARTITIONS,
                             backed=False)
    spec = lambda: NativeSpec(aggregator)
    marks = {}

    def sender(proc):
        req = proc.psend_init(sbuf, dest=1, tag=0, module=spec())
        team = WorkerTeam(proc.env, N_PARTITIONS,
                          cluster.rngs.stream("noise"), cores=40)
        phase = ComputePhase(compute=COMPUTE,
                             noise=SingleThreadDelay(NOISE, fixed_victim=31))
        yield from proc.start(req)
        marks["t0"] = proc.env.now
        yield team.run_round(phase, lambda tid: proc.pready(req, tid))
        yield from proc.wait_partitioned(req)
        marks["done"] = proc.env.now

    def receiver(proc):
        req = proc.precv_init(rbuf, source=0, tag=0, module=spec())
        yield from proc.start(req)
        yield from proc.wait_partitioned(req)

    from repro.analysis import chunk_timeline

    cluster.spawn(sender(sender_rank))
    cluster.spawn(receiver(receiver_rank))
    cluster.run()
    laggard_arrival = marks["t0"] + COMPUTE * (1 + NOISE)
    timeline = chunk_timeline(cluster.trace, node_id=0)
    before = sum(n for s, _, n in timeline if s < laggard_arrival)
    after = sum(n for s, _, n in timeline if s >= laggard_arrival)
    return before, after, marks["done"] - marks["t0"]


def main():
    designs = {
        "static ploggp": PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4)),
        "timer (d=35us)": TimerPLogGPAggregator(
            NIAGARA_LOGGP, delay=ms(4), delta=us(35)),
    }
    print(f"{fmt_bytes(TOTAL)} over {N_PARTITIONS} partitions; laggard "
          f"+{fmt_time(COMPUTE * NOISE)}\n")
    for name, agg in designs.items():
        before, after, elapsed = run(agg)
        print(f"{name:>15}: round {fmt_time(elapsed)}; "
              f"{fmt_bytes(before)} on the wire before the laggard, "
              f"{fmt_bytes(after)} left for the tail")
    print("\nReading: the static design holds the laggard's whole")
    print("transport group back, so a full group's bytes ride the tail;")
    print("the timer design flushes everything but the laggard's own")
    print("partition into the idle window (Fig. 10's early-bird room).")


if __name__ == "__main__":
    main()
