#!/usr/bin/env python3
"""Programming the simulated NIC with the raw ``ibv_*`` verbs facade.

The same sequence the paper's Section IV-A walks through: open a
device, allocate a protection domain, register memory regions, create
and connect queue pairs, post an ``RDMA_WRITE_WITH_IMM`` work request
whose immediate data encodes a partition range, and poll the completion
queue — without any MPI layer on top.

Run:  python examples/raw_verbs.py
"""

import numpy as np

from repro.core import decode_immediate, encode_immediate
from repro.ib import verbs
from repro.ib.constants import ACCESS_LOCAL, ACCESS_REMOTE_WRITE, Opcode
from repro.ib.fabric import Fabric
from repro.ib.wr import SGE, RecvWR, SendWR
from repro.mem import Buffer
from repro.sim import Environment
from repro.units import KiB, fmt_time


def main():
    env = Environment()
    fabric = Fabric(env)
    fabric.add_node(0)
    fabric.add_node(1)

    # Device contexts and protection domains, one per node.
    ctx0 = verbs.ibv_open_device(fabric, 0)
    ctx1 = verbs.ibv_open_device(fabric, 1)
    pd0 = verbs.ibv_alloc_pd(ctx0)
    pd1 = verbs.ibv_alloc_pd(ctx1)

    # Completion queues sit outside the PD.
    cq0 = verbs.ibv_create_cq(ctx0)
    cq1 = verbs.ibv_create_cq(ctx1)

    # A connected RC queue pair (RESET -> INIT -> RTR -> RTS both ways).
    qp0 = verbs.ibv_create_qp(ctx0, pd0, cq0, cq0)
    qp1 = verbs.ibv_create_qp(ctx1, pd1, cq1, cq1)
    verbs.connect_qps(qp0, qp1)

    # Register a send buffer locally and a receive buffer for remote
    # write — the rkey is what the sender must present.
    send_buf = Buffer(64 * KiB)
    recv_buf = Buffer(64 * KiB)
    send_buf.fill_pattern(seed=7)
    send_mr = verbs.ibv_reg_mr(pd0, send_buf, ACCESS_LOCAL)
    recv_mr = verbs.ibv_reg_mr(pd1, recv_buf,
                               ACCESS_LOCAL | ACCESS_REMOTE_WRITE)

    # RDMA_WRITE_WITH_IMM consumes a receive WR at the target, so the
    # receiver pre-posts one (as the paper's module does in MPI_Start).
    verbs.ibv_post_recv(qp1, RecvWR(wr_id=1))

    # Immediate data encodes (start user partition, contiguous count)
    # as two uint16 values packed into the __be32 (Section IV-A).
    imm = encode_immediate(4, 12)
    verbs.ibv_post_send(qp0, SendWR(
        wr_id=1,
        opcode=Opcode.RDMA_WRITE_WITH_IMM,
        sg_list=[SGE(send_mr.addr, 64 * KiB, send_mr.lkey)],
        remote_addr=recv_mr.addr,
        rkey=recv_mr.rkey,
        imm_data=imm,
    ))

    env.run()

    # Poll both CQs: the sender sees the write completion, the receiver
    # the immediate.
    [send_wc] = verbs.ibv_poll_cq(cq0, 4)
    [recv_wc] = verbs.ibv_poll_cq(cq1, 4)
    start, count = decode_immediate(recv_wc.imm_data)
    print(f"send completion: wr_id={send_wc.wr_id} status={send_wc.status.value}")
    print(f"recv completion: {recv_wc.byte_len} bytes at "
          f"{fmt_time(recv_wc.completed_at)}, immediate says user "
          f"partitions [{start}, {start + count})")
    assert np.array_equal(recv_buf.data, send_buf.data)
    print("remote memory matches the gather source — RDMA write verified")


if __name__ == "__main__":
    main()
