#!/usr/bin/env python3
"""Sweep3D communication pattern (paper Fig. 14, condensed).

A 2-D wavefront over a process grid: every rank waits on partitioned
receives from its up/left neighbours, computes with a 16-thread team
(one laggard per rank per round), then partition-sends down/right.
Reported is the *communication* speedup over ``part_persist`` — the
wavefront's critical-path compute is subtracted.

The paper runs 8x8 ranks x 16 threads = 1024 cores; that works here too
(pass --full) but the default 4x4 grid shows the same shape in seconds.

Run:  python examples/sweep3d.py [--full]
"""

import sys

from repro import PLogGPAggregator, TimerPLogGPAggregator
from repro.bench.sweep import run_sweep
from repro.bench.reporting import format_speedup_series
from repro.model.tables import NIAGARA_LOGGP
from repro.units import KiB, MiB, ms, us


def main():
    full = "--full" in sys.argv
    grid = (8, 8) if full else (4, 4)
    iterations, warmup = (10, 3) if full else (3, 1)
    sizes = [64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB]
    designs = {
        "ploggp": PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4)),
        "timer(d=8us)": TimerPLogGPAggregator(
            NIAGARA_LOGGP, delay=ms(4), delta=us(8)),
    }
    series = {name: {} for name in designs}
    for size in sizes:
        base = run_sweep(None, grid=grid, total_bytes=size, compute=ms(1),
                         noise_fraction=0.01, iterations=iterations,
                         warmup=warmup)
        for name, module in designs.items():
            ours = run_sweep(module, grid=grid, total_bytes=size,
                             compute=ms(1), noise_fraction=0.01,
                             iterations=iterations, warmup=warmup)
            series[name][size] = base.mean_comm_time / ours.mean_comm_time
    cores = grid[0] * grid[1] * 16
    print(f"Sweep3D on {grid[0]}x{grid[1]} ranks x 16 threads = {cores} "
          f"cores; 1ms compute, 1% noise")
    print("Communication-time speedup over part_persist:")
    print(format_speedup_series(series))
    print("\nReading: aggregation wins for small-medium messages and")
    print("fades once transfers are wire-bound; the timer design holds")
    print("its speedup when the noise grows (try editing noise_fraction).")


if __name__ == "__main__":
    main()
