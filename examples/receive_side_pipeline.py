#!/usr/bin/env python3
"""Receive-side pipelining with ``MPI_Parrived``.

Receive-side partitioning (Dosanjh & Grant, the paper's ref. [9]) lets
consumer threads start working on each partition as soon as it lands
instead of waiting for the whole message.  Here the sender's threads
finish at staggered times (heavy noise), and each receiver thread polls
``MPI_Parrived`` on its own partition, then "processes" it — overlapping
receive-side compute with the remaining transfers.

The run prints, per partition, when it arrived and when its processing
finished, plus the end-to-end win over a wait-for-everything receiver.

Run:  python examples/receive_side_pipeline.py
"""

import numpy as np

from repro import (
    Cluster,
    ComputePhase,
    NativeSpec,
    PartitionedBuffer,
    TimerPLogGPAggregator,
    UniformNoise,
    WorkerTeam,
)
from repro.model.tables import NIAGARA_LOGGP
from repro.units import KiB, fmt_time, ms, us

N_PARTITIONS = 8
PARTITION_SIZE = 256 * KiB
COMPUTE = ms(1)
PROCESS_TIME = ms(0.3)  # receive-side work per partition


def spec():
    return NativeSpec(TimerPLogGPAggregator(
        NIAGARA_LOGGP, delay=ms(4), delta=us(10)))


def run(pipelined: bool) -> float:
    cluster = Cluster(n_nodes=2)
    sender_rank, receiver_rank = cluster.ranks(2)
    send_buf = PartitionedBuffer(N_PARTITIONS, PARTITION_SIZE)
    recv_buf = PartitionedBuffer(N_PARTITIONS, PARTITION_SIZE)
    send_buf.fill_pattern(seed=3)
    finish = {}

    def sender(proc):
        req = proc.psend_init(send_buf, dest=1, tag=0, module=spec())
        team = WorkerTeam(proc.env, N_PARTITIONS,
                          cluster.rngs.stream("noise"), cores=40)
        # Heavy uniform noise staggers the producers across ~1 ms.
        phase = ComputePhase(compute=COMPUTE, noise=UniformNoise(1.0))
        yield from proc.start(req)
        yield team.run_round(phase, lambda tid: proc.pready(req, tid))
        yield from proc.wait_partitioned(req)

    def consumer_thread(proc, req, tid, log):
        # Poll MPI_Parrived for this thread's partition, then process.
        while not (yield from proc.parrived(req, tid)):
            pass
        arrived = proc.env.now
        yield proc.env.timeout(PROCESS_TIME)
        log[tid] = (arrived, proc.env.now)

    def receiver(proc):
        req = proc.precv_init(recv_buf, source=0, tag=0, module=spec())
        yield from proc.start(req)
        log = {}
        if pipelined:
            threads = [
                proc.env.process(consumer_thread(proc, req, tid, log))
                for tid in range(N_PARTITIONS)
            ]
            yield proc.env.all_of(threads)
            yield from proc.wait_partitioned(req)
        else:
            yield from proc.wait_partitioned(req)
            for tid in range(N_PARTITIONS):
                arrived = proc.env.now
                yield proc.env.timeout(PROCESS_TIME)
                log[tid] = (arrived, proc.env.now)
        finish["time"] = proc.env.now
        finish["log"] = log

    cluster.spawn(sender(sender_rank))
    cluster.spawn(receiver(receiver_rank))
    cluster.run()
    assert np.array_equal(recv_buf.data, send_buf.data)
    if pipelined:
        print("partition   arrived   processed")
        for tid in sorted(finish["log"]):
            arrived, processed = finish["log"][tid]
            print(f"{tid:>9}  {fmt_time(arrived):>8}  {fmt_time(processed):>9}")
    return finish["time"]


def main():
    t_pipelined = run(pipelined=True)
    t_bulk = run(pipelined=False)
    print(f"\npipelined (Parrived per partition): {fmt_time(t_pipelined)}")
    print(f"bulk      (Wait, then process all): {fmt_time(t_bulk)}")
    print(f"overlap win: {t_bulk / t_pipelined:.2f}x")


if __name__ == "__main__":
    main()
