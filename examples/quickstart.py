#!/usr/bin/env python3
"""Quickstart: MPI Partitioned communication over the simulated fabric.

Two ranks on two nodes.  The sender's buffer is split into 16 user
partitions, one per worker thread; each thread "computes" for 1 ms
(with single-thread-delay noise) and then marks its partition ready
with ``MPI_Pready``.  The native-verbs module aggregates the user
partitions into transport partitions chosen by the PLogGP model and
ships them as RDMA writes with immediate data.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Cluster,
    ComputePhase,
    NativeSpec,
    PartitionedBuffer,
    PLogGPAggregator,
    SingleThreadDelay,
    WorkerTeam,
)
from repro.model.tables import NIAGARA_LOGGP
from repro.units import KiB, fmt_bytes, fmt_time, ms

N_PARTITIONS = 16
PARTITION_SIZE = 64 * KiB
COMPUTE = ms(1)


def make_spec():
    """Both sides pass an equivalent module spec to the init calls."""
    return NativeSpec(PLogGPAggregator(NIAGARA_LOGGP, delay=ms(4)))


def main():
    cluster = Cluster(n_nodes=2)
    sender_rank, receiver_rank = cluster.ranks(2)

    send_buf = PartitionedBuffer(N_PARTITIONS, PARTITION_SIZE)
    recv_buf = PartitionedBuffer(N_PARTITIONS, PARTITION_SIZE)
    send_buf.fill_pattern(seed=42)

    def sender(proc):
        # MPI_Psend_init: non-blocking persistent init (matching, QP
        # exchange, and memory registration happen asynchronously).
        req = proc.psend_init(send_buf, dest=1, tag=0, module=make_spec())
        team = WorkerTeam(proc.env, N_PARTITIONS,
                          cluster.rngs.stream("noise"), cores=40)
        phase = ComputePhase(compute=COMPUTE, noise=SingleThreadDelay(0.04))

        yield from proc.start(req)          # MPI_Start
        # Parallel region: each thread computes then marks its partition.
        yield team.run_round(phase, lambda tid: proc.pready(req, tid))
        yield from proc.wait_partitioned(req)   # MPI_Wait
        plan = req.module.plan
        print(f"sender   done at {fmt_time(proc.env.now)}; the PLogGP "
              f"aggregator mapped {N_PARTITIONS} user partitions onto "
              f"{plan.n_transport} transport partitions over "
              f"{plan.n_qps} QP(s) -> {req.module.total_wrs_posted} "
              f"RDMA write(s)")

    def receiver(proc):
        req = proc.precv_init(recv_buf, source=0, tag=0, module=make_spec())
        yield from proc.start(req)
        # MPI_Parrived lets threads consume partitions as they land;
        # here we simply wait for the full buffer.
        yield from proc.wait_partitioned(req)
        print(f"receiver done at {fmt_time(proc.env.now)}; "
              f"{fmt_bytes(recv_buf.nbytes)} received")

    cluster.spawn(sender(sender_rank))
    cluster.spawn(receiver(receiver_rank))
    cluster.run()

    assert np.array_equal(recv_buf.data, send_buf.data), "data mismatch!"
    print("payload verified: every byte arrived intact")


if __name__ == "__main__":
    main()
