#!/usr/bin/env python3
"""2-D halo exchange with MPI Partitioned (an application pattern).

Each rank owns a tile of a global field and exchanges one halo face per
neighbour each timestep.  Faces are partitioned row-wise, one partition
per worker thread, so early rows stream out while late rows are still
being computed — the early-bird behaviour MPI Partitioned exists for.

This pattern is the other application kernel the paper's benchmark
suite [14] ships alongside Sweep3D.

Run:  python examples/halo_exchange.py
"""

import numpy as np

from repro import (
    Cluster,
    ComputePhase,
    NativeSpec,
    PartitionedBuffer,
    SingleThreadDelay,
    TimerPLogGPAggregator,
    WorkerTeam,
)
from repro.model.tables import NIAGARA_LOGGP
from repro.units import KiB, fmt_time, ms, us

GRID = (2, 2)           # ranks
N_THREADS = 8           # partitions per face
FACE_PARTITION = 16 * KiB
TIMESTEPS = 3


def spec():
    return NativeSpec(TimerPLogGPAggregator(
        NIAGARA_LOGGP, delay=ms(4), delta=us(10)))


def main():
    px, py = GRID
    n_ranks = px * py
    cluster = Cluster(n_nodes=n_ranks)
    procs = cluster.ranks(n_ranks)
    done = []

    def rank_id(i, j):
        return i * py + j

    def neighbours(i, j):
        out = {}
        if i > 0:
            out["up"] = rank_id(i - 1, j)
        if i < px - 1:
            out["down"] = rank_id(i + 1, j)
        if j > 0:
            out["left"] = rank_id(i, j - 1)
        if j < py - 1:
            out["right"] = rank_id(i, j + 1)
        return out

    opposite = {"up": "down", "down": "up", "left": "right", "right": "left"}

    def program(proc, i, j):
        nbrs = neighbours(i, j)
        sends, recvs = {}, {}
        # One persistent partitioned pair per face, tagged by direction
        # so up/down and left/right faces never cross-match.
        for direction, peer in nbrs.items():
            tag = ("up", "down", "left", "right").index(direction) % 2
            send_face = PartitionedBuffer(N_THREADS, FACE_PARTITION,
                                          backed=False)
            recv_face = PartitionedBuffer(N_THREADS, FACE_PARTITION,
                                          backed=False)
            sends[direction] = proc.psend_init(
                send_face, dest=peer,
                tag=("up", "down", "left", "right").index(direction),
                module=spec())
            recvs[direction] = proc.precv_init(
                recv_face, source=peer,
                tag=("up", "down", "left", "right").index(
                    opposite[direction]),
                module=spec())
        team = WorkerTeam(proc.env, N_THREADS,
                          cluster.rngs.stream(f"noise.{proc.rank}"), cores=40)
        phase = ComputePhase(compute=ms(0.5), noise=SingleThreadDelay(0.02))
        send_reqs = list(sends.values())

        def body(tid):
            # Each thread computed its rows of every face: mark them.
            for req in send_reqs:
                yield from proc.pready(req, tid)

        for step in range(TIMESTEPS):
            for req in list(recvs.values()) + send_reqs:
                yield from proc.start(req)
            yield team.run_round(phase, lambda tid: body(tid))
            for req in send_reqs:
                yield from proc.wait_partitioned(req)
            for req in recvs.values():
                yield from proc.wait_partitioned(req)
        done.append((proc.rank, proc.env.now))

    for i in range(px):
        for j in range(py):
            cluster.spawn(program(procs[rank_id(i, j)], i, j))
    cluster.run()

    finish = max(t for _, t in done)
    print(f"{n_ranks} ranks x {N_THREADS} threads ran {TIMESTEPS} halo "
          f"timesteps in {fmt_time(finish)} of virtual time")
    per_step = finish / TIMESTEPS
    print(f"~{fmt_time(per_step)} per step: 0.5ms compute + face "
          f"exchange, with faces streamed row-by-row as threads finish")


if __name__ == "__main__":
    main()
